#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/dev/disk.h"
#include "src/dev/media_server.h"
#include "src/hw/machine.h"
#include "src/sim/simulation.h"

namespace ctms {
namespace {

class DiskFixture : public ::testing::Test {
 protected:
  DiskFixture() : sim_(1), machine_(&sim_, "server"), disk_(&machine_) {
    machine_.cpu().set_dispatch_base(0);
    machine_.cpu().set_dispatch_jitter(0);
  }
  Simulation sim_;
  Machine machine_;
  MediaDisk disk_;
};

TEST_F(DiskFixture, FilesAreContiguousAndBounded) {
  EXPECT_TRUE(disk_.CreateFile("a", 1000));
  EXPECT_TRUE(disk_.CreateFile("b", 2000));
  EXPECT_FALSE(disk_.CreateFile("a", 10));  // duplicate name
  EXPECT_EQ(disk_.FileSize("a"), 1000);
  EXPECT_EQ(disk_.FileSize("b"), 2000);
  EXPECT_EQ(disk_.FileSize("missing"), -1);
  // Capacity exhaustion.
  EXPECT_FALSE(disk_.CreateFile("huge", 400 * 1024 * 1024));
}

TEST_F(DiskFixture, ReadRejectsBadRanges) {
  disk_.CreateFile("a", 1000);
  int rejected = 0;
  const auto expect_reject = [&](int64_t offset, int64_t bytes) {
    disk_.Read("a", offset, bytes, [&](bool ok) {
      if (!ok) {
        ++rejected;
      }
    });
  };
  expect_reject(-1, 10);
  expect_reject(0, 0);
  expect_reject(900, 200);  // past EOF
  disk_.Read("missing", 0, 10, [&](bool ok) {
    if (!ok) {
      ++rejected;
    }
  });
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(disk_.stats().reads, 0u);
}

TEST_F(DiskFixture, ColdReadPaysSeekAndRotation) {
  disk_.CreateFile("pad", 100 * 1024 * 1024);  // push "a" away from byte 0
  disk_.CreateFile("a", 1024 * 1024);
  SimTime done = -1;
  disk_.Read("a", 0, 2000, [&](bool ok) {
    ASSERT_TRUE(ok);
    done = sim_.Now();
  });
  sim_.RunAll();
  // Controller 0.5 ms + a seek of a third of the disk (~11 ms) + up to one rotation
  // (16.7 ms) + transfer 1.33 ms + interrupt cost.
  EXPECT_GT(done, Milliseconds(5));
  EXPECT_LT(done, Milliseconds(32));
}

TEST_F(DiskFixture, SequentialReadsSkipTheMechanics) {
  disk_.CreateFile("a", 1024 * 1024);
  std::vector<SimTime> completions;
  // First read positions the head; the following reads continue where it stopped.
  for (int i = 0; i < 4; ++i) {
    disk_.Read("a", i * 2000, 2000, [&](bool) { completions.push_back(sim_.Now()); });
  }
  sim_.RunAll();
  ASSERT_EQ(completions.size(), 4u);
  // All four: the head parks at byte 0, exactly where file "a" begins.
  EXPECT_EQ(disk_.stats().sequential_reads, 4u);
  // Sequential service: controller 0.5 ms + transfer 1.33 ms (+0.12 interrupt).
  const SimDuration gap = completions[2] - completions[1];
  EXPECT_NEAR(static_cast<double>(gap), static_cast<double>(Microseconds(1833)),
              static_cast<double>(Microseconds(200)));
}

TEST_F(DiskFixture, InterleavedStreamsThrashTheHead) {
  disk_.CreateFile("a", 50 * 1024 * 1024);
  disk_.CreateFile("b", 50 * 1024 * 1024);
  int64_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    disk_.Read("a", offset, 2000, nullptr);
    disk_.Read("b", offset, 2000, nullptr);
    offset += 2000;
  }
  sim_.RunAll();
  EXPECT_EQ(disk_.stats().reads, 20u);
  // Nothing (except possibly the very first pair) is sequential: the head ping-pongs.
  EXPECT_LE(disk_.stats().sequential_reads, 1u);
  // Average service is dominated by seek + rotation, far above the 1.8 ms streaming rate.
  const double avg_service = static_cast<double>(disk_.stats().busy_time) / 20.0;
  EXPECT_GT(avg_service, static_cast<double>(Milliseconds(8)));
}

TEST_F(DiskFixture, UtilizationAndWorstServiceTracked) {
  disk_.CreateFile("a", 1024 * 1024);
  disk_.Read("a", 0, 64 * 1024, nullptr);
  sim_.RunAll();
  EXPECT_GT(disk_.Utilization(), 0.5);  // nothing else happened in this run
  EXPECT_GT(disk_.stats().worst_service, Milliseconds(40));  // 64 KB at 1.5 MB/s
}

TEST(ServerExperimentTest, SingleClientSustainsFullRate) {
  ServerConfig config;
  config.clients = 1;
  config.duration = Seconds(20);
  const ServerReport report = ServerExperiment(config).Run();
  EXPECT_TRUE(report.AllSustained()) << report.Summary();
  EXPECT_GT(report.disk_sequential_fraction, 0.9);
}

TEST(ServerExperimentTest, TwoHalfRateClientsNeedReadAhead) {
  ServerConfig thrash;
  thrash.clients = 2;
  thrash.packet_bytes = 1000;
  thrash.read_chunk_bytes = 1000;  // per-packet reads
  thrash.duration = Seconds(20);
  const ServerReport thrash_report = ServerExperiment(thrash).Run();
  EXPECT_FALSE(thrash_report.AllSustained());
  uint64_t starvations = 0;
  for (const auto& client : thrash_report.clients) {
    starvations += client.server_starvations;
  }
  EXPECT_GT(starvations, 100u);
  EXPECT_GT(thrash_report.disk_utilization, 0.9);

  ServerConfig chunked = thrash;
  chunked.read_chunk_bytes = 32 * 1024;
  const ServerReport chunked_report = ServerExperiment(chunked).Run();
  EXPECT_TRUE(chunked_report.AllSustained()) << chunked_report.Summary();
  EXPECT_LT(chunked_report.disk_utilization, 0.4);
}

TEST(ServerExperimentTest, AdapterSerializationCapsFullRateStreams) {
  // Even with a happy disk, the strictly-serialized driver cannot push two full-rate
  // streams through one adapter (~10 ms service per 2000-byte packet).
  ServerConfig config;
  config.clients = 2;
  config.read_chunk_bytes = 32 * 1024;
  config.duration = Seconds(20);
  const ServerReport report = ServerExperiment(config).Run();
  EXPECT_FALSE(report.AllSustained());
  uint64_t lost = 0;
  uint64_t starvations = 0;
  for (const auto& client : report.clients) {
    lost += client.lost;
    starvations += client.server_starvations;
  }
  EXPECT_GT(lost, 100u);       // the driver queue overflows
  EXPECT_LT(starvations, 20u);  // and it is NOT the disk's fault
}


TEST(ServerExperimentTest, SmallFileLoopsAtEof) {
  // A file holding only ~2 s of media: the stream must wrap and keep playing (the head
  // seeks back to the extent start at each wrap).
  ServerConfig config;
  config.clients = 1;
  config.file_bytes = 2000 * 170;  // ~170 packets
  config.read_chunk_bytes = 16 * 1024;
  config.duration = Seconds(10);
  const ServerReport report = ServerExperiment(config).Run();
  EXPECT_TRUE(report.AllSustained()) << report.Summary();
  EXPECT_GT(report.clients[0].sent, 700u);  // several times the file's length
  // Wraps break pure sequentiality but only once per pass.
  EXPECT_LT(report.disk_sequential_fraction, 1.0);
  EXPECT_GT(report.disk_sequential_fraction, 0.8);
}

TEST(ServerExperimentTest, SummaryListsClients) {
  ServerConfig config;
  config.clients = 2;
  config.packet_bytes = 1000;
  config.duration = Seconds(5);
  const ServerReport report = ServerExperiment(config).Run();
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("client 0"), std::string::npos);
  EXPECT_NE(summary.find("client 1"), std::string::npos);
  EXPECT_NE(summary.find("read-ahead"), std::string::npos);
}

}  // namespace
}  // namespace ctms
