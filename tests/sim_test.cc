#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/inline_function.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/sim/trace_log.h"

namespace ctms {
namespace {

TEST(TimeTest, UnitArithmetic) {
  EXPECT_EQ(Microseconds(1), 1000 * kNanosecond);
  EXPECT_EQ(Milliseconds(12), 12000 * kMicrosecond);
  EXPECT_EQ(Seconds(1), 1000 * kMillisecond);
  EXPECT_EQ(Hours(2), 120 * kMinute);
  EXPECT_EQ(ToMicroseconds(Microseconds(2600)), 2600);
  EXPECT_EQ(ToMilliseconds(Milliseconds(130)), 130);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Nanoseconds(500)), "500 ns");
  EXPECT_EQ(FormatDuration(Microseconds(122)), "122 us");
  EXPECT_EQ(FormatDuration(Milliseconds(12)), "12 ms");
  EXPECT_EQ(FormatDuration(Seconds(30)), "30 s");
  EXPECT_EQ(FormatDuration(-Microseconds(5)), "-5 us");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, NormalDurationRespectsFloor) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(rng.NormalDuration(0, Microseconds(100), 0), 0);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  (void)parent_copy.NextU64();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == parent_copy.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(300, [&]() { order.push_back(3); });
  queue.Schedule(100, [&]() { order.push_back(1); });
  queue.Schedule(200, [&]() { order.push_back(2); });
  while (!queue.empty()) {
    SimTime when = 0;
    queue.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(50, [&order, i]() { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.PopNext(nullptr)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.Schedule(10, [&]() { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // double-cancel reports failure
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.Schedule(10, []() {});
  queue.Schedule(20, []() {});
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
}

TEST(EventQueueTest, CancelBetweenNextTimeAndPopRetargetsTheMin) {
  EventQueue queue;
  bool late_ran = false;
  const EventId early = queue.Schedule(10, []() {});
  queue.Schedule(20, [&]() { late_ran = true; });
  EXPECT_EQ(queue.NextTime(), 10);  // caches the minimum
  EXPECT_TRUE(queue.Cancel(early));
  SimTime when = 0;
  queue.PopNext(&when)();
  EXPECT_EQ(when, 20);
  EXPECT_TRUE(late_ran);
}

TEST(EventQueueTest, CancelWhilePoppingSameInstant) {
  // An event cancels a same-instant sibling that is already past NextTime() but not yet
  // popped: the sibling must not run and the cancel must report success.
  EventQueue queue;
  bool b_ran = false;
  EventId b = kInvalidEventId;
  bool cancel_ok = false;
  queue.Schedule(10, [&]() { cancel_ok = queue.Cancel(b); });
  b = queue.Schedule(10, [&]() { b_ran = true; });
  queue.Schedule(10, []() {});
  while (!queue.empty()) {
    queue.PopNext(nullptr)();
  }
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(b_ran);
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue queue;
  const EventId id = queue.Schedule(5, []() {});
  queue.PopNext(nullptr)();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, SameInstantFifoAcrossWheelHeapBoundary) {
  // Two events for the same instant, one scheduled while that instant was beyond the wheel
  // horizon (far heap) and one scheduled once it was inside (wheel). Insertion order must
  // still decide the tie, and both structures must actually have been used.
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(Milliseconds(100), [&]() { order.push_back(1); });  // far → heap
  for (SimTime t = Milliseconds(10); t <= Milliseconds(90); t += Milliseconds(10)) {
    queue.Schedule(t, []() {});  // stepping events drag the wheel base forward
  }
  for (int i = 0; i < 9; ++i) {
    queue.PopNext(nullptr)();
  }
  queue.Schedule(Milliseconds(100), [&]() { order.push_back(2); });  // near → wheel
  while (!queue.empty()) {
    queue.PopNext(nullptr)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GT(queue.wheel_pops(), 0u);
  EXPECT_GT(queue.far_heap_pops(), 0u);
}

TEST(EventQueueTest, SlabReuseDoesNotRecycleStaleGeneration) {
  EventQueue queue;
  const EventId stale = queue.Schedule(10, []() {});
  EXPECT_TRUE(queue.Cancel(stale));
  // The freed slot is reused; the old handle must not be able to touch the new event.
  bool ran = false;
  const EventId fresh = queue.Schedule(10, [&]() { ran = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(queue.Cancel(stale));
  queue.PopNext(nullptr)();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelReclaimsCapturedResourcesImmediately) {
  EventQueue queue;
  auto resource = std::make_shared<int>(7);
  const EventId id = queue.Schedule(Milliseconds(500), [resource]() {});
  EXPECT_EQ(resource.use_count(), 2);
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(resource.use_count(), 1);  // not "when the heap entry is popped, eventually"
}

TEST(EventQueueTest, OversizedCaptureFallsBackToHeapAndStillRuns) {
  EventQueue queue;
  std::array<char, 128> big{};  // larger than InlineFunction::kInlineBytes
  big[0] = 42;
  char seen = 0;
  queue.Schedule(1, [big, &seen]() { seen = big[0]; });
  queue.PopNext(nullptr)();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, MillionCancelledRtoTimersHoldBoundedMemory) {
  // The TCP-lite pattern that used to leak: re-arm a far (500 ms) timer, cancel it on the
  // next ack, a million times. Slots must be reused and stale far-heap entries compacted.
  EventQueue queue;
  SimTime now = 0;
  EventId armed = kInvalidEventId;
  for (int i = 0; i < 1'000'000; ++i) {
    if (armed != kInvalidEventId) {
      EXPECT_TRUE(queue.Cancel(armed));
    }
    now += Microseconds(3);
    armed = queue.Schedule(now + Milliseconds(500), []() {});
  }
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_LE(queue.slab_slots(), 64u);        // slot reuse, not a million records
  EXPECT_LE(queue.far_heap_entries(), 256u);  // stale entries compacted away
  EXPECT_GT(queue.far_heap_compactions(), 0u);
  EXPECT_TRUE(queue.Cancel(armed));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, DeterministicAcrossIdenticalOperationSequences) {
  auto run = [](std::vector<SimTime>* pops) {
    EventQueue queue;
    Rng rng(99);
    std::vector<EventId> ids;
    SimTime now = 0;
    for (int i = 0; i < 5000; ++i) {
      const int op = static_cast<int>(rng.UniformInt(0, 3));
      if (op <= 1 || queue.empty()) {
        ids.push_back(queue.Schedule(now + rng.UniformInt(0, Milliseconds(40)), []() {}));
      } else if (op == 2) {
        queue.Cancel(ids[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ids.size()) - 1))]);
      } else {
        SimTime when = 0;
        queue.PopNext(&when)();
        now = when;
        pops->push_back(when);
      }
    }
    while (!queue.empty()) {
      SimTime when = 0;
      queue.PopNext(&when)();
      pops->push_back(when);
    }
  };
  std::vector<SimTime> a;
  std::vector<SimTime> b;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
}

TEST(EventQueueTest, SmallWheelConfigStillOrdersCorrectly) {
  // A deliberately tiny wheel (8 buckets of 1.024 us) forces constant wheel↔heap traffic;
  // the (time, seq) contract must be unaffected by the geometry.
  EventQueue::Config config;
  config.wheel_bucket_width = 1 << 10;
  config.wheel_bucket_count = 8;
  EventQueue queue(config);
  Rng rng(5);
  std::vector<SimTime> times;
  for (int i = 0; i < 500; ++i) {
    const SimTime at = rng.UniformInt(0, Microseconds(200));
    times.push_back(at);
    queue.Schedule(at, []() {});
  }
  std::vector<SimTime> popped;
  while (!queue.empty()) {
    SimTime when = 0;
    queue.PopNext(&when)();
    popped.push_back(when);
  }
  std::sort(times.begin(), times.end());
  EXPECT_EQ(popped, times);
}

TEST(InlineFunctionTest, MoveTransfersOwnership) {
  int hits = 0;
  InlineFunction f = [&hits]() { ++hits; };
  InlineFunction g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move): post-move state is part of the contract
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, ResetReleasesCaptures) {
  auto resource = std::make_shared<int>(1);
  InlineFunction f = [resource]() {};
  EXPECT_EQ(resource.use_count(), 2);
  f.Reset();
  EXPECT_EQ(resource.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = -1;
  sim.After(Microseconds(50), [&]() { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, Microseconds(50));
  EXPECT_EQ(sim.Now(), Microseconds(50));
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int ran = 0;
  sim.After(Microseconds(10), [&]() { ++ran; });
  sim.After(Microseconds(99), [&]() { ++ran; });
  sim.After(Microseconds(101), [&]() { ++ran; });
  const uint64_t count = sim.RunUntil(Microseconds(100));
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), Microseconds(100));
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      sim.After(Microseconds(1), recurse);
    }
  };
  sim.After(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Microseconds(4));
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int ran = 0;
  sim.After(1, [&]() {
    ++ran;
    sim.Stop();
  });
  sim.After(2, [&]() { ++ran; });
  sim.RunAll();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(SimulationTest, PeriodicFiresAndCancels) {
  Simulation sim;
  int fired = 0;
  auto cancel = SchedulePeriodic(&sim, Milliseconds(1), Milliseconds(2), [&]() { ++fired; });
  sim.RunUntil(Milliseconds(10));  // fires at 1,3,5,7,9
  EXPECT_EQ(fired, 5);
  cancel();
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(fired, 5);
}

TEST(SimulationTest, PeriodicCancelFromInsideAction) {
  Simulation sim;
  int fired = 0;
  std::function<void()> cancel;
  cancel = SchedulePeriodic(&sim, Milliseconds(1), Milliseconds(1), [&]() {
    if (++fired == 3) {
      cancel();  // self-cancel mid-callback must stick
    }
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(fired, 3);
}

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog log;
  log.Append(1, "a", "b");
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLogTest, RecordsAndFilters) {
  TraceLog log;
  log.set_enabled(true);
  log.Append(1, "tx", "one");
  log.Append(2, "rx", "two");
  log.Append(3, "tx", "three");
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.WithCategory("tx").size(), 2u);
  EXPECT_NE(log.Dump().find("two"), std::string::npos);
}

TEST(TraceLogTest, CapacityEviction) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(10);
  for (int i = 0; i < 25; ++i) {
    log.Append(i, "c", "m");
  }
  EXPECT_LE(log.records().size(), 10u);
  EXPECT_GT(log.dropped(), 0u);
}

TEST(TraceLogTest, DumpReportsDroppedRecords) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.Append(i, "c", "m" + std::to_string(i));
  }
  ASSERT_GT(log.dropped(), 0u);
  const std::string dump = log.Dump();
  // The header announces the truncation so a capped log can't pass for a complete one.
  EXPECT_EQ(dump.rfind("[" + std::to_string(log.dropped()) + " oldest records dropped", 0),
            0u);

  log.Clear();
  log.Append(1, "c", "fresh");
  EXPECT_EQ(log.Dump().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace ctms
