#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"
#include "src/sim/trace_log.h"

namespace ctms {
namespace {

TEST(TimeTest, UnitArithmetic) {
  EXPECT_EQ(Microseconds(1), 1000 * kNanosecond);
  EXPECT_EQ(Milliseconds(12), 12000 * kMicrosecond);
  EXPECT_EQ(Seconds(1), 1000 * kMillisecond);
  EXPECT_EQ(Hours(2), 120 * kMinute);
  EXPECT_EQ(ToMicroseconds(Microseconds(2600)), 2600);
  EXPECT_EQ(ToMilliseconds(Milliseconds(130)), 130);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Nanoseconds(500)), "500 ns");
  EXPECT_EQ(FormatDuration(Microseconds(122)), "122 us");
  EXPECT_EQ(FormatDuration(Milliseconds(12)), "12 ms");
  EXPECT_EQ(FormatDuration(Seconds(30)), "30 s");
  EXPECT_EQ(FormatDuration(-Microseconds(5)), "-5 us");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, NormalDurationRespectsFloor) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(rng.NormalDuration(0, Microseconds(100), 0), 0);
  }
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(23);
  (void)parent_copy.NextU64();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.NextU64() == parent_copy.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(300, [&]() { order.push_back(3); });
  queue.Schedule(100, [&]() { order.push_back(1); });
  queue.Schedule(200, [&]() { order.push_back(2); });
  while (!queue.empty()) {
    SimTime when = 0;
    queue.PopNext(&when)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtSameTime) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(50, [&order, i]() { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.PopNext(nullptr)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const EventId id = queue.Schedule(10, [&]() { ran = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));  // double-cancel reports failure
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.Schedule(10, []() {});
  queue.Schedule(20, []() {});
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 20);
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  SimTime seen = -1;
  sim.After(Microseconds(50), [&]() { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, Microseconds(50));
  EXPECT_EQ(sim.Now(), Microseconds(50));
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulation sim;
  int ran = 0;
  sim.After(Microseconds(10), [&]() { ++ran; });
  sim.After(Microseconds(99), [&]() { ++ran; });
  sim.After(Microseconds(101), [&]() { ++ran; });
  const uint64_t count = sim.RunUntil(Microseconds(100));
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), Microseconds(100));
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      sim.After(Microseconds(1), recurse);
    }
  };
  sim.After(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.Now(), Microseconds(4));
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int ran = 0;
  sim.After(1, [&]() {
    ++ran;
    sim.Stop();
  });
  sim.After(2, [&]() { ++ran; });
  sim.RunAll();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.has_pending_events());
}

TEST(SimulationTest, PeriodicFiresAndCancels) {
  Simulation sim;
  int fired = 0;
  auto cancel = SchedulePeriodic(&sim, Milliseconds(1), Milliseconds(2), [&]() { ++fired; });
  sim.RunUntil(Milliseconds(10));  // fires at 1,3,5,7,9
  EXPECT_EQ(fired, 5);
  cancel();
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(fired, 5);
}

TEST(SimulationTest, PeriodicCancelFromInsideAction) {
  Simulation sim;
  int fired = 0;
  std::function<void()> cancel;
  cancel = SchedulePeriodic(&sim, Milliseconds(1), Milliseconds(1), [&]() {
    if (++fired == 3) {
      cancel();  // self-cancel mid-callback must stick
    }
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(fired, 3);
}

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog log;
  log.Append(1, "a", "b");
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceLogTest, RecordsAndFilters) {
  TraceLog log;
  log.set_enabled(true);
  log.Append(1, "tx", "one");
  log.Append(2, "rx", "two");
  log.Append(3, "tx", "three");
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.WithCategory("tx").size(), 2u);
  EXPECT_NE(log.Dump().find("two"), std::string::npos);
}

TEST(TraceLogTest, CapacityEviction) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(10);
  for (int i = 0; i < 25; ++i) {
    log.Append(i, "c", "m");
  }
  EXPECT_LE(log.records().size(), 10u);
  EXPECT_GT(log.dropped(), 0u);
}

TEST(TraceLogTest, DumpReportsDroppedRecords) {
  TraceLog log;
  log.set_enabled(true);
  log.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    log.Append(i, "c", "m" + std::to_string(i));
  }
  ASSERT_GT(log.dropped(), 0u);
  const std::string dump = log.Dump();
  // The header announces the truncation so a capped log can't pass for a complete one.
  EXPECT_EQ(dump.rfind("[" + std::to_string(log.dropped()) + " oldest records dropped", 0),
            0u);

  log.Clear();
  log.Append(1, "c", "fresh");
  EXPECT_EQ(log.Dump().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace ctms
