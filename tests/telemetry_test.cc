// Telemetry subsystem: registry semantics, tracer capacity, JSON exporter structure and
// escaping, and the end-to-end acceptance run — a short Test Case B with the tracer on must
// yield counters in every layer namespace, CPU-step and ring-frame spans, valid JSON for
// both artifacts, and byte-identical output across two same-seed runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/ctms.h"
#include "src/telemetry/json_export.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span_tracer.h"

namespace ctms {
namespace {

// --- a minimal recursive-descent JSON validator --------------------------------------------
// Enough of RFC 8259 to catch structural breakage in the exporters (unbalanced brackets,
// missing commas, bad escapes, bare tokens). Numbers are validated loosely.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !IsHex(s_[pos_ + i])) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (IsDigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start && IsDigit(s_[pos_ - 1]);
  }

  bool Literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }
  static bool IsHex(char c) {
    return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// --- registry ------------------------------------------------------------------------------

TEST(MetricsRegistryTest, PointersAreStableAcrossInsertions) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("a.first");
  first->Increment(3);
  // Force rebalancing traffic; node-based storage must not move the slot.
  for (int i = 0; i < 1000; ++i) {
    registry.GetCounter("b.filler." + std::to_string(i));
  }
  EXPECT_EQ(first, registry.GetCounter("a.first"));
  EXPECT_EQ(first->value(), 3u);
}

TEST(MetricsRegistryTest, CountersWithPrefixCountsNamespaces) {
  MetricsRegistry registry;
  registry.GetCounter("ring.frames");
  registry.GetCounter("ring.bytes");
  registry.GetCounter("driver.tr.tx.ctmsp_tx");
  EXPECT_EQ(registry.CountersWithPrefix("ring."), 2u);
  EXPECT_EQ(registry.CountersWithPrefix("driver."), 1u);
  EXPECT_EQ(registry.CountersWithPrefix("nothing."), 0u);
}

TEST(MetricsRegistryTest, SummaryTracksBounds) {
  MetricsRegistry registry;
  Summary* s = registry.GetSummary("lat");
  s->Observe(10);
  s->Observe(-4);
  s->Observe(6);
  EXPECT_EQ(s->count(), 3u);
  EXPECT_EQ(s->min(), -4);
  EXPECT_EQ(s->max(), 10);
  EXPECT_DOUBLE_EQ(s->Mean(), 4.0);
}

TEST(MetricsRegistryTest, SummaryMergeFromEmptyIsIdentity) {
  Summary target;
  target.Observe(5);
  target.Observe(9);
  Summary empty;  // count == 0: merging it must not disturb min/max/sum
  target.Merge(empty);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 5);
  EXPECT_EQ(target.max(), 9);
  EXPECT_EQ(target.sum(), 14);

  // And merging into an empty target adopts the source verbatim.
  Summary fresh;
  fresh.Merge(target);
  EXPECT_EQ(fresh.count(), 2u);
  EXPECT_EQ(fresh.min(), 5);
  EXPECT_EQ(fresh.max(), 9);
}

TEST(MetricsRegistryTest, SummaryMergeSingleValue) {
  Summary a;
  a.Observe(7);
  Summary b;
  b.Observe(-3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), -3);
  EXPECT_EQ(a.max(), 7);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(MetricsRegistryTest, SummaryMergePropagatesBounds) {
  Summary a;
  a.Observe(10);
  a.Observe(20);
  Summary b;
  b.Observe(-100);
  b.Observe(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), -100);
  EXPECT_EQ(a.max(), 500);
  EXPECT_EQ(a.sum(), 430);
}

TEST(MetricsRegistryTest, GaugeTracksHighWatermark) {
  Gauge gauge;
  gauge.Set(4);
  gauge.Set(17);
  gauge.Set(2);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.peak(), 17);
  gauge.Add(3);
  EXPECT_EQ(gauge.value(), 5);
  EXPECT_EQ(gauge.peak(), 17);
  gauge.ResetPeak();
  EXPECT_EQ(gauge.peak(), 5);
}

TEST(MetricsRegistryTest, MergeFromCarriesGaugePeaks) {
  MetricsRegistry run;
  Gauge* depth = run.GetGauge("ifq.depth");
  depth->Set(30);  // peak 30...
  depth->Set(1);   // ...but only 1 at snapshot time
  MetricsRegistry merged;
  merged.MergeFrom(run, "run0.");
  EXPECT_EQ(merged.GetGauge("run0.ifq.depth")->value(), 1);
  EXPECT_EQ(merged.GetGauge("run0.ifq.depth")->peak(), 30);
}

TEST(JsonExportTest, EmptySummaryExports) {
  MetricsRegistry registry;
  registry.GetSummary("never.observed");  // count == 0: export must stay valid JSON
  const std::string json = MetricsJson(registry);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("never.observed"), std::string::npos);
}

TEST(JsonExportTest, GaugePeakExports) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("adapter.onboard_rx.depth");
  gauge->Set(9);
  gauge->Set(3);
  const std::string json = MetricsJson(registry);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"adapter.onboard_rx.depth\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"adapter.onboard_rx.depth.peak\": 9"), std::string::npos) << json;
}

// --- tracer --------------------------------------------------------------------------------

TEST(SpanTracerTest, DisabledByDefault) {
  SpanTracer tracer;
  const TrackId t = tracer.RegisterTrack("cpu");
  tracer.AddComplete(t, "step", 0, 100);
  tracer.AddInstant(t, "irq", 50);
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.tracks().size(), 1u);  // track metadata survives being disabled
}

TEST(SpanTracerTest, CapacityEvictionReportsDropped) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(16);
  const TrackId t = tracer.RegisterTrack("cpu");
  for (int i = 0; i < 100; ++i) {
    tracer.AddComplete(t, "step", i * 10, 5);
  }
  EXPECT_LE(tracer.spans().size(), 16u);
  EXPECT_GT(tracer.dropped(), 0u);
  // A truncated trace must advertise itself in the export.
  EXPECT_NE(ChromeTraceJson(tracer).find("dropped"), std::string::npos);
}

// --- JSON exporters ------------------------------------------------------------------------

TEST(JsonExportTest, EscapesMetricNames) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");

  MetricsRegistry registry;
  registry.GetCounter("weird.\"name\"\\with\nbreaks")->Increment();
  const std::string json = MetricsJson(registry);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\\\"name\\\""), std::string::npos);
}

TEST(JsonExportTest, ChromeTraceStructure) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  const TrackId cpu = tracer.RegisterTrack("cpu.tx");
  const TrackId ring = tracer.RegisterTrack("ring");
  tracer.AddComplete(cpu, "vca-intr", 1500, 2500, {{"seq", 7}});
  tracer.AddInstant(ring, "ring_purge", 9000);

  const std::string json = ChromeTraceJson(tracer);
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Track metadata names the Chrome threads.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu.tx\""), std::string::npos);
  // One X complete and one i instant, microsecond timestamps with ns precision.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  // No truncation marker on an uncapped trace.
  EXPECT_EQ(json.find("dropped"), std::string::npos);
}

TEST(JsonExportTest, RunSummaryShape) {
  MetricsRegistry registry;
  registry.GetCounter("sim.events_executed")->Increment(42);
  registry.GetGauge("kern.tx.mbuf.level")->Set(-3);
  registry.GetSummary("ring.latency")->Observe(100);

  RunSummaryInfo info;
  info.scenario = "test-case-b";
  info.duration_s = 30.0;
  info.seed = 1;
  info.stats = {{"packets_built", 833.0}, {"ring_utilization", 0.253}};
  const std::string json = RunSummaryJson(registry, info);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"scenario\": \"test-case-b\""), std::string::npos);
  EXPECT_NE(json.find("\"packets_built\": 833"), std::string::npos);
  EXPECT_NE(json.find("\"sim.events_executed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"kern.tx.mbuf.level\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"ring.latency\""), std::string::npos);
}

TEST(JsonExportTest, WritersFailOnUnwritablePath) {
  MetricsRegistry registry;
  SpanTracer tracer;
  RunSummaryInfo info;
  EXPECT_FALSE(WriteMetricsJson(registry, "/no-such-dir/metrics.json"));
  EXPECT_FALSE(WriteChromeTraceJson(tracer, "/no-such-dir/trace.json"));
  EXPECT_FALSE(WriteRunSummaryJson(registry, info, "/no-such-dir/summary.json"));
}

TEST(JsonExportTest, WritersRoundTripToDisk) {
  MetricsRegistry registry;
  registry.GetCounter("sim.events_executed")->Increment(5);
  const std::string path = ::testing::TempDir() + "telemetry_roundtrip.json";
  ASSERT_TRUE(WriteMetricsJson(registry, path));
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, MetricsJson(registry) + "\n");
}

// --- end-to-end acceptance -----------------------------------------------------------------

CtmsConfig ShortTestCaseB() {
  CtmsConfig config = TestCaseB();
  config.duration = Seconds(2);
  return config;
}

TEST(TelemetryAcceptanceTest, ScenarioBCoversEveryLayer) {
  CtmsExperiment experiment(ShortTestCaseB());
  experiment.sim().telemetry().tracer.set_enabled(true);
  experiment.Run();

  const MetricsRegistry& metrics = experiment.sim().telemetry().metrics;
  // The paper's point: the stream crosses every layer. So must the counters.
  EXPECT_GE(metrics.CountersWithPrefix("ring."), 1u);
  EXPECT_GE(metrics.CountersWithPrefix("driver."), 1u);
  EXPECT_GE(metrics.CountersWithPrefix("kern."), 1u);
  EXPECT_GE(metrics.CountersWithPrefix("cpu."), 1u);
  EXPECT_GE(metrics.CountersWithPrefix("sim."), 1u);

  size_t nonzero = 0;
  for (const auto& [name, counter] : metrics.counters()) {
    if (counter.value() > 0) {
      ++nonzero;
    }
  }
  EXPECT_GE(nonzero, 15u) << "expected a populated registry after a scenario-B run";

  // The tracer saw CPU job steps and ring frames.
  const SpanTracer& tracer = experiment.sim().telemetry().tracer;
  bool cpu_step = false;
  bool ring_frame = false;
  for (const TraceSpan& span : tracer.spans()) {
    if (span.phase == TraceSpan::Phase::kComplete) {
      const std::string& track = tracer.tracks()[static_cast<size_t>(span.track)];
      if (span.name == "frame" && track == "ring") {
        ring_frame = true;
      }
      if (track.rfind("cpu.", 0) == 0) {
        cpu_step = true;
      }
    }
  }
  EXPECT_TRUE(cpu_step);
  EXPECT_TRUE(ring_frame);

  // Both artifacts are well-formed JSON.
  EXPECT_TRUE(IsValidJson(MetricsJson(metrics)));
  EXPECT_TRUE(IsValidJson(ChromeTraceJson(tracer)));
}

TEST(TelemetryAcceptanceTest, SameSeedRunsAreByteIdentical) {
  auto run = [](std::string* metrics_json, std::string* trace_json) {
    CtmsExperiment experiment(ShortTestCaseB());
    experiment.sim().telemetry().tracer.set_enabled(true);
    experiment.Run();
    *metrics_json = MetricsJson(experiment.sim().telemetry().metrics);
    *trace_json = ChromeTraceJson(experiment.sim().telemetry().tracer);
  };
  std::string metrics_a, trace_a, metrics_b, trace_b;
  run(&metrics_a, &trace_a);
  run(&metrics_b, &trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
}

}  // namespace
}  // namespace ctms
