// Tests for the testbed composition layer (src/testbed/): the Station teardown contract,
// topologies the experiment classes cannot express, and golden equivalence — the five
// experiments rebuilt on the testbed must produce the exact same-seed numbers as the
// hand-wired versions they replaced (captured before the refactor).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <utility>

#include "src/campaign/campaign.h"
#include "src/core/ctms.h"
#include "tests/report_matchers.h"

namespace ctms {
namespace {

// ---------------------------------------------------------------------------------------
// Teardown order. Queued CPU jobs hold packets whose mbuf chains live in the kernels'
// pools; stopping mid-flight and destroying everything must not touch freed memory (the
// ASan build is the real assertion here).

TEST(TestbedTeardown, MidFlightDestructionIsClean) {
  for (int run = 0; run < 2; ++run) {
    RingTopology topo(7);
    TokenRing& ring = topo.AddRing();
    Station::PortConfig port;
    port.driver.ctms_mode = true;
    Station& tx = topo.AddStation("tx");
    tx.AttachRing(&ring, &topo.probes(), port);
    Station& rx = topo.AddStation("rx");
    rx.AttachRing(&ring, &topo.probes(), port);
    // The stream outlives nothing: declared after the topology, it is destroyed first,
    // while the kernels (and their mbuf pools) are still alive — the documented order.
    StreamEndpoints::Config config;
    StreamEndpoints stream(&tx, &rx, &topo.probes(), config);
    topo.environment().AddMacTraffic(&ring, MacFrameTraffic::Config{0.01});
    topo.StartAll();
    stream.Start();
    // Stop at an offset that is not a multiple of the 12 ms packet period, so device
    // interrupts, driver jobs, and in-DMA receive work are queued when the world ends.
    topo.sim().RunFor(Milliseconds(40) + Microseconds(run == 0 ? 137 : 4211));
    EXPECT_GT(stream.Stats().built, 0u);
  }
}

TEST(TestbedTeardown, StandaloneStationDrainsItsOwnCpu) {
  RingTopology topo(9);
  TokenRing& ring = topo.AddRing();
  Station::PortConfig port;
  port.driver.ctms_mode = true;
  Station& solo = topo.AddStation("solo");
  solo.AttachRing(&ring, &topo.probes(), port);
  solo.AttachBackgroundActivity(topo.sim().rng().Fork());
  solo.Start();
  topo.sim().RunFor(Milliseconds(17));
  // ~Station drains the CPU itself; a second explicit drain must be harmless.
  solo.CancelJobs();
}

// ---------------------------------------------------------------------------------------
// A topology the pre-testbed experiment classes could not express: four stations on three
// rings, forwarding one CTMSP stream across two store-and-forward hops.

struct ChainResult {
  StreamStats stats;
  uint64_t forwarded_hop1 = 0;
  uint64_t forwarded_hop2 = 0;
  int64_t stations_gauge = 0;
  int64_t rings_gauge = 0;
};

ChainResult RunChain(uint64_t seed, SimDuration duration) {
  RingTopology topo(seed);
  TokenRing& ring_a = topo.AddRing();
  TokenRing& ring_b = topo.AddRing();
  TokenRing& ring_c = topo.AddRing();

  Station::PortConfig port;
  port.driver.ctms_mode = true;

  Station& src = topo.AddStation("src");
  src.AttachRing(&ring_a, &topo.probes(), port);
  Station& hop1 = topo.AddStation("hop1");
  hop1.AttachRing(&ring_a, &topo.probes(), port);
  hop1.AttachRing(&ring_b, &topo.probes(), port);
  Station& hop2 = topo.AddStation("hop2");
  hop2.AttachRing(&ring_b, &topo.probes(), port);
  hop2.AttachRing(&ring_c, &topo.probes(), port);
  Station& dst = topo.AddStation("dst");
  dst.AttachRing(&ring_c, &topo.probes(), port);

  StreamEndpoints::Config config;
  config.sink.prime_packets = 6;  // two extra hops of jitter
  StreamEndpoints stream(&src, &dst, &topo.probes(), config);
  CtmspRelay relay1(&hop1, /*in_port=*/0, /*out_port=*/1, hop2.address(0));
  CtmspRelay relay2(&hop2, /*in_port=*/0, /*out_port=*/1, dst.address());

  topo.environment().AddMacTraffic(&ring_b, MacFrameTraffic::Config{0.002});
  topo.StartAll();
  stream.Start(hop1.address(0));
  topo.sim().RunFor(duration);

  ChainResult result;
  result.stats = stream.Stats();
  result.forwarded_hop1 = relay1.forwarded();
  result.forwarded_hop2 = relay2.forwarded();
  result.stations_gauge = topo.sim().telemetry().metrics.GetGauge("topology.stations")->value();
  result.rings_gauge = topo.sim().telemetry().metrics.GetGauge("topology.rings")->value();
  return result;
}

TEST(ChainTopology, TwoHopRelayChainDelivers) {
  const ChainResult result = RunChain(/*seed=*/11, Seconds(3));
  EXPECT_GT(result.stats.built, 200u);
  EXPECT_EQ(result.stats.lost, 0u);
  EXPECT_GE(result.forwarded_hop1, result.stats.delivered);
  EXPECT_GE(result.forwarded_hop2, result.stats.delivered);
  EXPECT_GT(result.stats.delivered + 6, result.stats.built);  // at most in-flight shortfall
  EXPECT_EQ(result.stations_gauge, 4);
  EXPECT_EQ(result.rings_gauge, 3);
}

TEST(ChainTopology, SameSeedRunsAreIdentical) {
  const ChainResult a = RunChain(/*seed=*/11, Seconds(3));
  const ChainResult b = RunChain(/*seed=*/11, Seconds(3));
  ExpectSameStreamStats(a.stats, b.stats);
  EXPECT_EQ(a.forwarded_hop1, b.forwarded_hop1);
  EXPECT_EQ(a.forwarded_hop2, b.forwarded_hop2);
}

// ---------------------------------------------------------------------------------------
// Worker isolation. The campaign runner's determinism rests on the claim that two live
// topologies share no state at all; interleave two experiments in one thread and require
// bit-identical accounting against solo runs. (campaign_test.cc covers the threaded case
// under TSan.)

TEST(TwoInstanceIsolation, InterleavedExperimentsMatchSoloRuns) {
  CtmsConfig config_a = ShortScenario();
  CtmsConfig config_b = ShortScenario();
  config_b.seed = 8;
  const ExperimentReport solo_a = CtmsExperiment(config_a).Run();
  const ExperimentReport solo_b = CtmsExperiment(config_b).Run();

  CtmsExperiment interleaved_a(config_a);
  CtmsExperiment interleaved_b(config_b);
  interleaved_a.Start();
  interleaved_b.Start();
  for (int slice = 0; slice < 30; ++slice) {
    interleaved_a.sim().RunFor(Milliseconds(100));
    interleaved_b.sim().RunFor(Milliseconds(100));
  }
  ExpectSameAccounting(interleaved_a.Report(), solo_a);
  ExpectSameAccounting(interleaved_b.Report(), solo_b);
}

TEST(TwoInstanceIsolation, InterleavedRegistriesAndTracersStayIndependent) {
  RingTopology topo_a(3);
  RingTopology topo_b(3);
  topo_a.AddRing();
  topo_b.AddRing();
  topo_a.sim().telemetry().metrics.GetCounter("test.only_in_a")->Increment();
  topo_b.sim().RunFor(Milliseconds(5));
  EXPECT_EQ(topo_a.sim().telemetry().metrics.CountersWithPrefix("test."), 1u);
  EXPECT_EQ(topo_b.sim().telemetry().metrics.CountersWithPrefix("test."), 0u);
  EXPECT_EQ(topo_a.sim().Now(), 0);
  EXPECT_EQ(topo_b.sim().Now(), Milliseconds(5));
}

// ---------------------------------------------------------------------------------------
// Golden equivalence. These exact numbers were produced by the pre-testbed experiment
// classes (each building its hosts by hand) at the same seeds. The refactor must be
// numerically invisible: construction order, RNG fork order, and event insertion order all
// feed the event queue's tie-breaking, so any drift shows up here as a hard failure.

TEST(GoldenEquivalence, CtmsTestCaseBFiveSecondsSeed3) {
  CtmsConfig config = TestCaseB();
  config.duration = Seconds(5);
  config.seed = 3;
  const ExperimentReport r = CtmsExperiment(config).Run();
  EXPECT_EQ(r.packets_built, 416u);
  EXPECT_EQ(r.packets_delivered, 415u);
  EXPECT_EQ(r.packets_lost, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.out_of_order, 0u);
  EXPECT_EQ(r.source_mbuf_drops, 0u);
  EXPECT_EQ(r.source_queue_drops, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_EQ(r.sink_peak_buffer, 20000);
  EXPECT_NEAR(r.tx_cpu_utilization, 0.482618136400, 1e-9);
  EXPECT_NEAR(r.rx_cpu_utilization, 0.606978853400, 1e-9);
  EXPECT_NEAR(r.ring_utilization, 0.465686150000, 1e-9);
  EXPECT_EQ(r.ring_purges, 0u);
  ASSERT_FALSE(r.ground_truth.pre_tx_to_rx.empty());
  EXPECT_EQ(r.ground_truth.pre_tx_to_rx.Summary().min, 10773851);
  EXPECT_NEAR(r.ground_truth.pre_tx_to_rx.Summary().mean, 11336996.361446, 1e-3);
}

TEST(GoldenEquivalence, BaselineUdpTenSecondsSeed4) {
  BaselineConfig config;
  config.packet_bytes = 2000;
  config.duration = Seconds(10);
  config.seed = 4;
  const BaselineReport r = BaselineExperiment(config).Run();
  EXPECT_EQ(r.packets_captured, 833u);
  EXPECT_EQ(r.packets_delivered, 672u);
  EXPECT_EQ(r.source_mbuf_drops, 0u);
  EXPECT_EQ(r.tx_relay_rcvbuf_drops, 0u);
  EXPECT_EQ(r.tx_ifsnd_drops, 0u);
  EXPECT_EQ(r.rx_ipintr_drops, 0u);
  EXPECT_EQ(r.rx_relay_rcvbuf_drops, 150u);
  EXPECT_EQ(r.rx_adapter_overruns, 0u);
  EXPECT_EQ(r.sink_underruns, 154u);
  EXPECT_NEAR(r.tx_cpu_utilization, 0.966307288500, 1e-9);
  EXPECT_NEAR(r.rx_cpu_utilization, 0.997320494500, 1e-9);
  EXPECT_NEAR(r.ring_utilization, 0.383965450000, 1e-9);
}

TEST(GoldenEquivalence, BaselineTcpSixSecondsSeed4) {
  BaselineConfig config;
  config.packet_bytes = 2000;
  config.duration = Seconds(6);
  config.seed = 4;
  config.use_tcp = true;
  const BaselineReport r = BaselineExperiment(config).Run();
  EXPECT_EQ(r.packets_captured, 499u);
  EXPECT_EQ(r.packets_delivered, 344u);
  EXPECT_EQ(r.tcp_retransmits, 0u);
  EXPECT_EQ(r.sink_underruns, 148u);
  EXPECT_NEAR(r.ring_utilization, 0.377491083333, 1e-9);
}

TEST(GoldenEquivalence, MultiStreamTwoStreamsTenSecondsSeed2) {
  MultiStreamConfig config;
  config.streams = 2;
  config.duration = Seconds(10);
  config.seed = 2;
  const MultiStreamReport r = MultiStreamExperiment(config).Run();
  EXPECT_NEAR(r.ring_utilization, 0.682700475000, 1e-9);
  ASSERT_EQ(r.streams.size(), 2u);
  EXPECT_EQ(r.streams[0].built, 833u);
  EXPECT_EQ(r.streams[0].delivered, 832u);
  EXPECT_EQ(r.streams[0].lost, 0u);
  EXPECT_EQ(r.streams[0].queue_drops, 0u);
  EXPECT_EQ(r.streams[0].underruns, 0u);
  EXPECT_EQ(r.streams[0].mean_latency, 17688943);
  EXPECT_EQ(r.streams[0].max_latency, 21222329);
  EXPECT_EQ(r.streams[1].built, 832u);
  EXPECT_EQ(r.streams[1].delivered, 831u);
  EXPECT_EQ(r.streams[1].lost, 0u);
  EXPECT_EQ(r.streams[1].queue_drops, 0u);
  EXPECT_EQ(r.streams[1].underruns, 0u);
  EXPECT_EQ(r.streams[1].mean_latency, 17859010);
  EXPECT_EQ(r.streams[1].max_latency, 21365951);
}

TEST(GoldenEquivalence, ServerTwoClientsTenSecondsSeed2) {
  ServerConfig config;
  config.clients = 2;
  config.packet_bytes = 1000;
  config.read_chunk_bytes = 32 * 1024;
  config.duration = Seconds(10);
  config.seed = 2;
  const ServerReport r = ServerExperiment(config).Run();
  EXPECT_NEAR(r.server_cpu_utilization, 0.424749443200, 1e-9);
  EXPECT_NEAR(r.disk_utilization, 0.193609786300, 1e-9);
  EXPECT_NEAR(r.disk_sequential_fraction, 0.055555555556, 1e-9);
  EXPECT_EQ(r.disk_worst_service, 44722185);
  EXPECT_NEAR(r.ring_utilization, 0.344614200000, 1e-9);
  ASSERT_EQ(r.clients.size(), 2u);
  for (const ServerClientQuality& client : r.clients) {
    EXPECT_EQ(client.sent, 827u);
    EXPECT_EQ(client.delivered, 826u);
    EXPECT_EQ(client.lost, 0u);
    EXPECT_EQ(client.server_starvations, 0u);
    EXPECT_EQ(client.underruns, 0u);
  }
}

TEST(GoldenEquivalence, RouterViaMbufsTenSecondsSeed2) {
  RouterConfig config;
  config.forward_via_mbufs = true;
  config.duration = Seconds(10);
  config.seed = 2;
  const RouterReport r = RouterExperiment(config).Run();
  EXPECT_EQ(r.packets_built, 833u);
  EXPECT_EQ(r.packets_forwarded, 832u);
  EXPECT_EQ(r.packets_delivered, 830u);
  EXPECT_EQ(r.packets_lost, 0u);
  EXPECT_EQ(r.router_queue_drops(), 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_NEAR(r.router_cpu_utilization(), 0.408207773400, 1e-9);
  EXPECT_NEAR(r.ring_a_utilization(), 0.344999800000, 1e-9);
  EXPECT_NEAR(r.ring_b_utilization(), 0.343060425000, 1e-9);
  ASSERT_FALSE(r.end_to_end.empty());
  EXPECT_EQ(r.end_to_end.Summary().min, 32411604);
  EXPECT_NEAR(r.end_to_end.Summary().mean, 32912288.467470, 1e-3);
}

TEST(GoldenEquivalence, RouterZeroCopyTenSecondsSeed2) {
  RouterConfig config;
  config.forward_via_mbufs = false;
  config.duration = Seconds(10);
  config.seed = 2;
  const RouterReport r = RouterExperiment(config).Run();
  EXPECT_EQ(r.packets_built, 833u);
  EXPECT_EQ(r.packets_forwarded, 832u);
  EXPECT_EQ(r.packets_delivered, 831u);
  EXPECT_EQ(r.packets_lost, 0u);
  EXPECT_EQ(r.router_queue_drops(), 0u);
  EXPECT_EQ(r.sink_underruns, 0u);
  EXPECT_NEAR(r.router_cpu_utilization(), 0.071811881700, 1e-9);
  EXPECT_NEAR(r.ring_a_utilization(), 0.344999800000, 1e-9);
  EXPECT_NEAR(r.ring_b_utilization(), 0.343060425000, 1e-9);
  ASSERT_FALSE(r.end_to_end.empty());
  EXPECT_EQ(r.end_to_end.Summary().min, 28348868);
  EXPECT_NEAR(r.end_to_end.Summary().mean, 28735800.714458, 1e-3);
}

// The merged campaign document, pinned byte for byte against a committed golden file. This
// freezes the whole surface at once: every per-run stat, the aggregate percentiles, the
// "run<i>." metric namespacing, and the JSON spelling itself. Regenerate with
//   ctms_sim --experiment=campaign --grid=seed=1:3 --duration=2
//            --metrics-json=tests/golden/campaign_seed_sweep.json  (one line)
TEST(GoldenEquivalence, CampaignSeedSweepMatchesGoldenFile) {
  ScenarioConfig base;
  base.experiment = "campaign";
  base.duration_s = 2;
  std::string error;
  auto grid = CampaignGrid::Parse("seed=1:3", &error);
  ASSERT_TRUE(grid.has_value()) << error;
  CampaignRunner runner(base, std::move(*grid), CampaignRunner::Options{});
  ASSERT_EQ(runner.Prepare(), "");
  const CampaignReport report = runner.Run();

  std::ifstream in(std::string(CTMS_TESTS_GOLDEN_DIR) + "/campaign_seed_sweep.json");
  ASSERT_TRUE(in.good()) << "missing golden file";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(report.MergedJson(), golden.str());
}

}  // namespace
}  // namespace ctms
