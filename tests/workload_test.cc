#include <gtest/gtest.h>

#include "src/dev/tr_driver.h"
#include "src/hw/machine.h"
#include "src/measure/probe.h"
#include "src/ring/adapter.h"
#include "src/kern/unix_kernel.h"
#include "src/proto/arp.h"
#include "src/proto/ip.h"
#include "src/proto/udp.h"
#include "src/ring/token_ring.h"
#include "src/sim/simulation.h"
#include "src/workload/host_service.h"
#include "src/workload/kernel_activity.h"
#include "src/core/ctms.h"
#include "src/workload/ring_traffic.h"

namespace ctms {
namespace {

TEST(KernelActivityTest, SoftclockAndSectionsConsumeCpu) {
  Simulation sim(1);
  Machine machine(&sim, "m");
  KernelBackgroundActivity activity(&machine, sim.rng().Fork());
  activity.Start();
  sim.RunUntil(Seconds(10));
  activity.Stop();
  EXPECT_GT(activity.sections_run(), 100u);  // ~40/s short + ~1.4/s long
  EXPECT_GT(machine.cpu().busy_time(), 0);
  // Background activity is light: a few percent of the CPU at most.
  EXPECT_LT(machine.cpu().Utilization(), 0.05);
}

TEST(KernelActivityTest, StopActuallyStops) {
  Simulation sim(1);
  Machine machine(&sim, "m");
  KernelBackgroundActivity activity(&machine, sim.rng().Fork());
  activity.Start();
  sim.RunUntil(Seconds(1));
  activity.Stop();
  const uint64_t sections = activity.sections_run();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(activity.sections_run(), sections);
}

TEST(KernelActivityTest, LongSectionsDelayInterruptDispatch) {
  Simulation sim(1);
  Machine machine(&sim, "m");
  machine.cpu().set_dispatch_base(0);
  machine.cpu().set_dispatch_jitter(0);
  KernelBackgroundActivity::Config config;
  config.short_interarrival_mean = Hours(10);  // isolate the long class
  config.long_interarrival_mean = Milliseconds(10);
  config.long_min = Milliseconds(2);
  config.long_max = Milliseconds(3);
  KernelBackgroundActivity activity(&machine, sim.rng().Fork(), config);
  activity.Start();
  // Sample dispatch latency of a kImp interrupt issued repeatedly.
  SimDuration worst = 0;
  for (int i = 0; i < 200; ++i) {
    sim.After(i * Milliseconds(5), [&sim, &machine, &worst]() {
      const SimTime submitted = sim.Now();
      machine.cpu().SubmitInterrupt("probe", Spl::kImp, 0, [&sim, &worst, submitted]() {
        worst = std::max(worst, sim.Now() - submitted);
      });
    });
  }
  sim.RunUntil(Seconds(2));
  activity.Stop();
  EXPECT_GT(worst, Milliseconds(1));   // a section blocked dispatch
  EXPECT_LE(worst, Milliseconds(10));  // at most a few sections can stack back-to-back
}

TEST(MacFrameTrafficTest, RateMatchesBandwidthFraction) {
  Simulation sim(2);
  TokenRing ring(&sim);
  MacFrameTraffic traffic(&ring, sim.rng().Fork(), MacFrameTraffic::Config{0.006});
  // 0.6% of 4 Mbit in 20-byte frames = 150 frames/s.
  EXPECT_NEAR(traffic.FramesPerSecond(), 150.0, 0.5);
  traffic.Start();
  sim.RunUntil(Seconds(20));
  traffic.Stop();
  EXPECT_NEAR(static_cast<double>(traffic.frames_sent()) / 20.0, 150.0, 20.0);
}

TEST(MacFrameTrafficTest, ZeroFractionSendsNothing) {
  Simulation sim(2);
  TokenRing ring(&sim);
  MacFrameTraffic traffic(&ring, sim.rng().Fork(), MacFrameTraffic::Config{0.0});
  traffic.Start();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(traffic.frames_sent(), 0u);
}

TEST(GhostTrafficTest, SingleFramesAtConfiguredRate) {
  Simulation sim(3);
  TokenRing ring(&sim);
  GhostTraffic::Config config;
  config.interarrival_mean = Milliseconds(100);
  GhostTraffic traffic(&ring, sim.rng().Fork(), config);
  traffic.Start();
  sim.RunUntil(Seconds(20));
  traffic.Stop();
  EXPECT_NEAR(static_cast<double>(traffic.frames_sent()), 200.0, 45.0);
}

TEST(GhostTrafficTest, BurstsSendMultipleFrames) {
  Simulation sim(3);
  TokenRing ring(&sim);
  GhostTraffic::Config config;
  config.interarrival_mean = Milliseconds(500);
  config.burst_min = 5;
  config.burst_max = 5;
  config.burst_spacing = Milliseconds(1);
  uint64_t frames_on_wire = 0;
  ring.AddFrameMonitor([&](const Frame& frame, SimTime) {
    if (frame.kind == FrameKind::kLlc) {
      ++frames_on_wire;
    }
  });
  GhostTraffic traffic(&ring, sim.rng().Fork(), config);
  traffic.Start();
  sim.RunUntil(Seconds(10));
  traffic.Stop();
  sim.RunUntil(Seconds(11));
  EXPECT_EQ(frames_on_wire, traffic.frames_sent());
  EXPECT_EQ(traffic.frames_sent() % 5, 0u);  // whole bursts
  EXPECT_GT(traffic.frames_sent(), 50u);
}

TEST(GhostTrafficTest, TargetedFramesCarryDemuxHints) {
  Simulation sim(4);
  TokenRing ring(&sim);
  GhostTraffic::Config config;
  config.interarrival_mean = Milliseconds(50);
  config.target = 77;
  config.protocol = ProtocolId::kIp;
  config.ip_proto = kIpProtoUdp;
  config.port = 5000;
  bool checked = false;
  ring.AddFrameMonitor([&](const Frame& frame, SimTime) {
    if (frame.kind == FrameKind::kLlc) {
      EXPECT_EQ(frame.dst, 77);
      EXPECT_EQ(frame.protocol, ProtocolId::kIp);
      EXPECT_EQ(frame.ip_proto, kIpProtoUdp);
      EXPECT_EQ(frame.port, 5000);
      checked = true;
    }
  });
  GhostTraffic traffic(&ring, sim.rng().Fork(), config);
  traffic.Start();
  sim.RunUntil(Seconds(1));
  EXPECT_TRUE(checked);
}

TEST(InsertionScheduleTest, PoissonInsertionsAtConfiguredMean) {
  Simulation sim(5);
  TokenRing ring(&sim);
  InsertionSchedule schedule(&ring, sim.rng().Fork(),
                             InsertionSchedule::Config{Minutes(10)});
  schedule.Start();
  sim.RunUntil(Hours(10));
  schedule.Stop();
  // ~60 expected over 10 hours at 1 per 10 minutes.
  EXPECT_GT(schedule.insertions(), 35u);
  EXPECT_LT(schedule.insertions(), 90u);
  EXPECT_EQ(ring.insertion_count(), schedule.insertions());
}

class HostServiceFixture : public ::testing::Test {
 protected:
  HostServiceFixture()
      : sim_(7),
        machine_(&sim_, "host"),
        kernel_(&machine_),
        ring_(&sim_),
        adapter_(&machine_, &ring_, TokenRingAdapter::Config{}),
        driver_(&kernel_, &adapter_, &probes_, TokenRingDriver::Config{}),
        arp_(&kernel_, &driver_),
        ip_(&kernel_, &driver_, &arp_),
        udp_(&kernel_, &ip_) {
    driver_.SetIpInput([this](const Packet& packet) { ip_.Input(packet); });
    driver_.SetArpInput([this](const Packet& packet) { arp_.Input(packet); });
  }

  Simulation sim_;
  Machine machine_;
  UnixKernel kernel_;
  TokenRing ring_;
  ProbeBus probes_;
  TokenRingAdapter adapter_;
  TokenRingDriver driver_;
  ArpLayer arp_;
  IpLayer ip_;
  UdpLayer udp_;
};

TEST_F(HostServiceFixture, ControlServiceRepliesToRequests) {
  ControlServiceProcess service(&kernel_, &udp_, sim_.rng().Fork());
  arp_.InstallStatic(55);
  uint64_t replies_on_wire = 0;
  ring_.AddFrameMonitor([&](const Frame& frame, SimTime) {
    if (frame.kind == FrameKind::kLlc && frame.src == adapter_.address()) {
      ++replies_on_wire;
    }
  });
  // Inject three requests through the full receive path.
  GhostTraffic::Config requests;
  requests.interarrival_mean = Milliseconds(100);
  requests.target = adapter_.address();
  requests.protocol = ProtocolId::kIp;
  requests.ip_proto = kIpProtoUdp;
  requests.port = 5000;
  GhostTraffic source(&ring_, Rng(99), requests);
  source.Start();
  sim_.RunUntil(Seconds(2));
  source.Stop();
  sim_.RunUntil(Seconds(3));
  EXPECT_GT(service.requests(), 10u);
  EXPECT_EQ(service.requests(), service.replies());
  // Requests arrive from a ghost station the ARP cache learns about on first reply.
  EXPECT_GT(replies_on_wire, 0u);
}

TEST_F(HostServiceFixture, AfsDaemonSendsKeepalives) {
  AfsClientDaemon::Config config;
  config.server = ring_.AllocateGhostAddress();
  config.mean_interval = Milliseconds(200);
  arp_.InstallStatic(config.server);
  AfsClientDaemon daemon(&kernel_, &udp_, sim_.rng().Fork(), config);
  uint64_t keepalives_on_wire = 0;
  ring_.AddFrameMonitor([&](const Frame& frame, SimTime) {
    if (frame.kind == FrameKind::kLlc && frame.dst == config.server) {
      ++keepalives_on_wire;
    }
  });
  daemon.Start();
  sim_.RunUntil(Seconds(4));
  daemon.Stop();
  sim_.RunUntil(Seconds(5));
  EXPECT_GT(daemon.keepalives_sent(), 8u);
  EXPECT_EQ(keepalives_on_wire, daemon.keepalives_sent());
}


TEST(TraceReplayTest, ParsesCsvWithCommentsAndBlanks) {
  const std::string csv = "# campus capture excerpt\n"
                          "0,60\n"
                          "  1200 , 1522  # a file-transfer frame\n"
                          "\n"
                          "2400,300\n";
  const auto trace = TraceReplayTraffic::ParseCsv(csv);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 3u);
  EXPECT_EQ((*trace)[1].offset, Microseconds(1200));
  EXPECT_EQ((*trace)[1].bytes, 1522);
}

TEST(TraceReplayTest, RejectsMalformedLinesWithLineNumber) {
  int error_line = -1;
  EXPECT_FALSE(TraceReplayTraffic::ParseCsv("0,60\nnot-a-line\n", &error_line).has_value());
  EXPECT_EQ(error_line, 2);
  EXPECT_FALSE(TraceReplayTraffic::ParseCsv("0,-5\n", &error_line).has_value());
  EXPECT_EQ(error_line, 1);
  EXPECT_FALSE(TraceReplayTraffic::LoadCsv("/nonexistent-zzz.csv", &error_line).has_value());
}

TEST(TraceReplayTest, ReplaysFramesAtScheduledOffsets) {
  Simulation sim(1);
  TokenRing ring(&sim);
  std::vector<SimTime> on_wire;
  ring.AddFrameMonitor([&](const Frame& frame, SimTime end) {
    if (frame.kind == FrameKind::kLlc) {
      on_wire.push_back(end - ring.TokenAcquisitionTime() -
                        ring.WireTime(WireBytes(frame)));
    }
  });
  std::vector<TraceEntry> trace = {{Milliseconds(5), 100}, {Milliseconds(20), 1522}};
  TraceReplayTraffic replay(&ring, trace);
  replay.Start();
  sim.RunUntil(Seconds(1));
  ASSERT_EQ(on_wire.size(), 2u);
  EXPECT_EQ(on_wire[0], Milliseconds(5));
  EXPECT_EQ(on_wire[1], Milliseconds(20));
  EXPECT_EQ(replay.frames_sent(), 2u);
}

TEST(TraceReplayTest, LoopRepeatsAndStopCancels) {
  Simulation sim(1);
  TokenRing ring(&sim);
  std::vector<TraceEntry> trace = {{Milliseconds(1), 60}};
  TraceReplayTraffic replay(&ring, trace);
  replay.Start(/*loop=*/true, Milliseconds(10));
  sim.RunUntil(Milliseconds(95));
  EXPECT_EQ(replay.frames_sent(), 10u);
  replay.Stop();
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(replay.frames_sent(), 10u);
}

TEST(LiveAnalyzerTest, HaltsOnLostPacket) {
  Simulation sim(1);
  ProbeBus bus;
  LiveAnalyzer analyzer(&bus, &sim);
  sim.After(Seconds(10), []() {});  // something for Stop() to interrupt
  bus.Emit(ProbePoint::kPreTransmit, 1, Milliseconds(12));
  bus.Emit(ProbePoint::kPreTransmit, 2, Milliseconds(24));
  bus.Emit(ProbePoint::kPreTransmit, 4, Milliseconds(36));  // 3 vanished
  EXPECT_TRUE(analyzer.tripped());
  EXPECT_NE(analyzer.snapshot().reason.find("lost packet"), std::string::npos);
  EXPECT_EQ(analyzer.snapshot().offending.seq, 4u);
  EXPECT_EQ(analyzer.snapshot().recent.size(), 3u);
}

TEST(LiveAnalyzerTest, HaltsOnRegressionAndLongGapAndRearms) {
  Simulation sim(1);
  ProbeBus bus;
  LiveAnalyzer::Config config;
  config.halt_simulation = false;
  LiveAnalyzer analyzer(&bus, &sim, config);
  bus.Emit(ProbePoint::kRxClassified, 5, Milliseconds(12));
  bus.Emit(ProbePoint::kRxClassified, 4, Milliseconds(24));  // regression
  EXPECT_TRUE(analyzer.tripped());
  EXPECT_NE(analyzer.snapshot().reason.find("regression"), std::string::npos);

  analyzer.Rearm();
  EXPECT_FALSE(analyzer.tripped());
  bus.Emit(ProbePoint::kVcaHandlerEntry, 1, Milliseconds(100));
  bus.Emit(ProbePoint::kVcaHandlerEntry, 2, Milliseconds(300));  // 200 ms inter-occurrence
  EXPECT_TRUE(analyzer.tripped());
  EXPECT_NE(analyzer.snapshot().reason.find("inter-occurrence"), std::string::npos);
}

TEST(LiveAnalyzerTest, CleanStreamNeverTrips) {
  Simulation sim(1);
  ProbeBus bus;
  LiveAnalyzer analyzer(&bus, &sim);
  for (uint32_t seq = 1; seq <= 500; ++seq) {
    bus.Emit(ProbePoint::kPreTransmit, seq, seq * Milliseconds(12));
    bus.Emit(ProbePoint::kRxClassified, seq, seq * Milliseconds(12) + Microseconds(10800));
  }
  EXPECT_FALSE(analyzer.tripped());
  EXPECT_EQ(analyzer.events_checked(), 1000u);
}

TEST(LiveAnalyzerTest, HaltsTheWholeTestbedOnInjectedLoss) {
  // End to end, the way the paper used it: a Test Case A stream with the analyzer armed;
  // a purge kills a packet mid-run; every machine freezes at the trip point.
  CtmsConfig config = TestCaseA();
  config.duration = Seconds(30);
  CtmsExperiment experiment(config);
  LiveAnalyzer analyzer(&experiment.probes(), &experiment.sim());
  experiment.Start();
  experiment.sim().After(Milliseconds(511), [&experiment]() {  // mid-wire for the packet sent at 504 ms
    experiment.ring().TriggerRingPurge();  // lands mid-wire: one packet dies
  });
  experiment.sim().RunFor(Seconds(30));
  ASSERT_TRUE(analyzer.tripped());
  EXPECT_NE(analyzer.snapshot().reason.find("lost packet"), std::string::npos);
  // The halt froze the run well before the configured end.
  EXPECT_LT(analyzer.snapshot().tripped_at, Seconds(2));
}

}  // namespace
}  // namespace ctms
