// ctms_sim — command-line front end to the CTMS reproduction.
//
// Run any scenario from the paper's measurement matrix without writing code:
//
//   ctms_sim --scenario=A --duration=60
//   ctms_sim --scenario=B --duration=120 --histogram=6 --bin-us=500
//   ctms_sim --scenario=B --zero-copy --method=truth
//   ctms_sim --baseline --packet-bytes=2000 --tcp
//   ctms_sim --scenario=B --csv-prefix=/tmp/run1 --duration=300
//
// Prints the experiment summary, optionally an ASCII histogram, and optionally exports all
// seven paper histograms as CSV.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/core/ctms.h"
#include "src/measure/export.h"
#include "src/telemetry/json_export.h"

namespace {

using namespace ctms;

struct Options {
  std::string scenario = "A";
  bool baseline = false;
  bool tcp = false;
  int64_t duration_s = 30;
  uint64_t seed = 1;
  int64_t packet_bytes = 2000;
  int64_t period_ms = 12;
  std::string memory = "iocm";
  std::string method = "pcat";
  bool driver_priority = true;
  int ring_priority = 6;
  bool zero_copy = false;
  bool retransmit = false;
  int64_t insertion_mean_min = 0;
  int histogram = 0;  // 0 = none, 1..7 = paper histogram number
  int64_t bin_us = 500;
  std::string csv_prefix;
  std::string trace_path;
  bool ground_truth_output = false;
  std::string metrics_json;
  std::string trace_json;
  bool print_metrics = false;
};

void PrintUsage() {
  std::printf(
      "ctms_sim — reproduce the USENIX'91 CTMS experiments\n\n"
      "scenario selection:\n"
      "  --scenario=A|B        Test Case A (private quiet ring) or B (loaded public ring)\n"
      "  --baseline            run the stock UNIX relay path instead of CTMS\n"
      "  --tcp                 baseline uses TCP-lite instead of UDP\n\n"
      "stream and environment:\n"
      "  --duration=SECONDS    simulated run length (default 30)\n"
      "  --seed=N              simulation seed (default 1)\n"
      "  --packet-bytes=N      payload per device interrupt (default 2000)\n"
      "  --period-ms=N         device interrupt period (default 12)\n"
      "  --memory=iocm|system  fixed DMA buffer placement\n"
      "  --no-driver-priority  CTMSP shares if_snd with ARP/IP\n"
      "  --ring-priority=N     Token Ring access priority, 0=off (default 6)\n"
      "  --zero-copy           pointer-passing transmit (the section-2 extension)\n"
      "  --retransmit          MAC-receive purge recovery\n"
      "  --insertions=MINUTES  mean minutes between station insertions (0=off)\n"
      "  --trace=FILE          replay a background-traffic CSV (offset_us,bytes) on loop\n\n"
      "measurement and output:\n"
      "  --method=pcat|rtpc|logic|truth   instrument (default pcat)\n"
      "  --histogram=1..7      render a paper histogram as ASCII\n"
      "  --bin-us=N            histogram bin width (default 500)\n"
      "  --ground-truth        render histograms from the perfect observer\n"
      "  --csv-prefix=PATH     export all seven histograms as PATH_histN.csv\n"
      "  --metrics-json=FILE   write the run summary + full metrics registry as JSON\n"
      "  --trace-json=FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --print-metrics       print every telemetry counter after the run\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

bool ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else if (arg == "--baseline") {
      options->baseline = true;
    } else if (arg == "--tcp") {
      options->tcp = true;
    } else if (arg == "--no-driver-priority") {
      options->driver_priority = false;
    } else if (arg == "--zero-copy") {
      options->zero_copy = true;
    } else if (arg == "--retransmit") {
      options->retransmit = true;
    } else if (arg == "--ground-truth") {
      options->ground_truth_output = true;
    } else if (arg == "--print-metrics") {
      options->print_metrics = true;
    } else if (ParseFlag(arg, "scenario", &value)) {
      options->scenario = value;
    } else if (ParseFlag(arg, "duration", &value)) {
      options->duration_s = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      options->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "packet-bytes", &value)) {
      options->packet_bytes = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "period-ms", &value)) {
      options->period_ms = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "memory", &value)) {
      options->memory = value;
    } else if (ParseFlag(arg, "method", &value)) {
      options->method = value;
    } else if (ParseFlag(arg, "ring-priority", &value)) {
      options->ring_priority = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "insertions", &value)) {
      options->insertion_mean_min = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "histogram", &value)) {
      options->histogram = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "bin-us", &value)) {
      options->bin_us = std::atoll(value.c_str());
    } else if (ParseFlag(arg, "csv-prefix", &value)) {
      options->csv_prefix = value;
    } else if (ParseFlag(arg, "trace", &value)) {
      options->trace_path = value;
    } else if (ParseFlag(arg, "metrics-json", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--metrics-json requires a file path (try --help)\n");
        return false;
      }
      options->metrics_json = value;
    } else if (ParseFlag(arg, "trace-json", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--trace-json requires a file path (try --help)\n");
        return false;
      }
      options->trace_json = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  if (options->duration_s <= 0) {
    std::fprintf(stderr, "--duration must be a positive number of seconds (try --help)\n");
    return false;
  }
  if (options->packet_bytes <= 0) {
    std::fprintf(stderr, "--packet-bytes must be positive (try --help)\n");
    return false;
  }
  if (options->period_ms <= 0) {
    std::fprintf(stderr, "--period-ms must be positive (try --help)\n");
    return false;
  }
  if (options->histogram < 0 || options->histogram > 7) {
    std::fprintf(stderr, "--histogram must be between 1 and 7, or 0 for none (try --help)\n");
    return false;
  }
  if (options->scenario != "A" && options->scenario != "B") {
    std::fprintf(stderr, "unknown --scenario=%s (expected A or B; try --help)\n",
                 options->scenario.c_str());
    return false;
  }
  if (options->memory != "iocm" && options->memory != "system") {
    std::fprintf(stderr, "unknown --memory=%s (expected iocm or system; try --help)\n",
                 options->memory.c_str());
    return false;
  }
  if (options->method != "pcat" && options->method != "rtpc" && options->method != "logic" &&
      options->method != "truth") {
    std::fprintf(stderr, "unknown --method=%s (expected pcat, rtpc, logic or truth; try --help)\n",
                 options->method.c_str());
    return false;
  }
  return true;
}

// Post-run telemetry output shared by the CTMS and baseline paths. Returns false if a
// requested file could not be written.
bool EmitTelemetry(const Options& options, Simulation& sim, const RunSummaryInfo& info) {
  bool ok = true;
  if (options.print_metrics) {
    std::printf("telemetry counters:\n");
    for (const auto& [name, counter] : sim.telemetry().metrics.counters()) {
      std::printf("  %-48s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  if (!options.trace_json.empty()) {
    if (WriteChromeTraceJson(sim.telemetry().tracer, options.trace_json)) {
      std::printf("wrote %s\n", options.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.trace_json.c_str());
      ok = false;
    }
  }
  if (!options.metrics_json.empty()) {
    if (WriteRunSummaryJson(sim.telemetry().metrics, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      ok = false;
    }
  }
  return ok;
}

const Histogram* SelectHistogram(const PaperHistograms& histograms, int number) {
  switch (number) {
    case 1:
      return &histograms.inter_irq;
    case 2:
      return &histograms.inter_handler;
    case 3:
      return &histograms.inter_pre_tx;
    case 4:
      return &histograms.inter_rx;
    case 5:
      return &histograms.irq_to_handler;
    case 6:
      return &histograms.handler_to_pre_tx;
    case 7:
      return &histograms.pre_tx_to_rx;
    default:
      return nullptr;
  }
}

int RunBaseline(const Options& options) {
  BaselineConfig config;
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.use_tcp = options.tcp;
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  config.dma_buffer_kind = options.memory == "system" ? MemoryKind::kSystemMemory
                                                      : MemoryKind::kIoChannelMemory;
  BaselineExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const BaselineReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.csv_prefix.empty()) {
    WriteSamplesCsv(report.end_to_end_latency, options.csv_prefix + "_latency.csv");
    std::printf("wrote %s_latency.csv\n", options.csv_prefix.c_str());
  }
  RunSummaryInfo info;
  info.scenario = options.tcp ? "baseline-tcp" : "baseline-udp";
  info.duration_s = static_cast<double>(options.duration_s);
  info.seed = options.seed;
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.Sustained() ? 0 : 2;
}

int RunCtms(const Options& options) {
  ScenarioConfig config = options.scenario == "B" ? TestCaseB() : TestCaseA();
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.dma_buffer_kind = options.memory == "system" ? MemoryKind::kSystemMemory
                                                      : MemoryKind::kIoChannelMemory;
  config.driver_priority = options.driver_priority;
  config.ring_priority = options.ring_priority;
  config.tx_zero_copy = options.zero_copy;
  config.retransmit_on_purge = options.retransmit;
  config.insertion_mean = Minutes(options.insertion_mean_min);
  if (options.method == "rtpc") {
    config.method = MeasurementMethod::kRtPcPseudoDevice;
  } else if (options.method == "logic") {
    config.method = MeasurementMethod::kLogicAnalyzer;
  } else if (options.method == "truth") {
    config.method = MeasurementMethod::kGroundTruth;
  } else {
    config.method = MeasurementMethod::kPcAt;
  }

  CtmsExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  std::unique_ptr<TraceReplayTraffic> trace;
  if (!options.trace_path.empty()) {
    int error_line = 0;
    auto entries = TraceReplayTraffic::LoadCsv(options.trace_path, &error_line);
    if (!entries.has_value()) {
      std::fprintf(stderr, "bad trace file %s (line %d)\n", options.trace_path.c_str(),
                   error_line);
      return 1;
    }
    trace = std::make_unique<TraceReplayTraffic>(&experiment.ring(), std::move(*entries));
    SimDuration span = 0;
    for (const TraceEntry& entry : trace->trace()) {
      span = std::max(span, entry.offset);
    }
    trace->Start(/*loop=*/true, span + Milliseconds(50));
  }
  const ExperimentReport report = experiment.Run();
  std::cout << report.Summary();
  if (trace != nullptr) {
    std::printf("replayed %llu background frames from %s\n",
                static_cast<unsigned long long>(trace->frames_sent()),
                options.trace_path.c_str());
  }

  const PaperHistograms& source =
      options.ground_truth_output ? report.ground_truth : report.measured;
  if (options.histogram != 0) {
    const Histogram* histogram = SelectHistogram(source, options.histogram);
    std::cout << "\n" << histogram->SummaryLine() << "\n";
    std::cout << histogram->RenderAscii(Microseconds(options.bin_us));
  }
  if (!options.csv_prefix.empty()) {
    const int written = WritePaperHistogramsCsv(source, options.csv_prefix);
    std::printf("wrote %d CSV files with prefix %s\n", written, options.csv_prefix.c_str());
  }
  RunSummaryInfo info;
  info.scenario = config.name;
  info.duration_s = static_cast<double>(options.duration_s);
  info.seed = options.seed;
  info.stats = {
      {"packets_built", static_cast<double>(report.packets_built)},
      {"packets_delivered", static_cast<double>(report.packets_delivered)},
      {"packets_lost", static_cast<double>(report.packets_lost)},
      {"duplicates", static_cast<double>(report.duplicates)},
      {"out_of_order", static_cast<double>(report.out_of_order)},
      {"retransmissions", static_cast<double>(report.retransmissions)},
      {"sink_underruns", static_cast<double>(report.sink_underruns)},
      {"sink_peak_buffer_bytes", static_cast<double>(report.sink_peak_buffer)},
      {"tx_cpu_utilization", report.tx_cpu_utilization},
      {"rx_cpu_utilization", report.rx_cpu_utilization},
      {"ring_utilization", report.ring_utilization},
      {"ring_purges", static_cast<double>(report.ring_purges)},
      {"ring_insertions", static_cast<double>(report.ring_insertions)},
  };
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  const bool healthy = report.packets_lost == 0 && report.sink_underruns == 0;
  return healthy ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    }
  }
  Options options;
  if (!ParseOptions(argc, argv, &options)) {
    return 1;
  }
  if (options.baseline) {
    return RunBaseline(options);
  }
  return RunCtms(options);
}
