// ctms_sim — command-line front end to the CTMS reproduction.
//
// Run any scenario from the paper's measurement matrix without writing code:
//
//   ctms_sim --scenario=A --duration=60
//   ctms_sim --scenario=B --duration=120 --histogram=6 --bin-us=500
//   ctms_sim --scenario=B --zero-copy --method=truth
//   ctms_sim --experiment=baseline --packet-bytes=2000 --tcp
//   ctms_sim --experiment=multistream --streams=3 --duration=20
//   ctms_sim --experiment=server --clients=2 --duration=20
//   ctms_sim --experiment=router --zero-copy
//   ctms_sim --scenario=B --faults=plan.json --degradation=retransmit
//   ctms_sim --experiment=faultsweep --sweep-levels=4 --duration=10
//   ctms_sim --experiment=campaign --grid=seed=1:8 --jobs=4 --duration=10
//   ctms_sim --scenario=B --csv-prefix=/tmp/run1 --duration=300
//
// Prints the experiment summary, optionally an ASCII histogram, and optionally exports all
// seven paper histograms as CSV.
//
// Every flag is applied through the shared tables in src/core/scenario_cli.h, and the
// per-experiment config structs are built from the resulting ScenarioConfig by the
// converters there — so the campaign grid (`--grid=seed=1:4;streams=1,2`) can sweep any
// flag this tool accepts, by the same name.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "src/campaign/campaign.h"
#include "src/core/ctms.h"
#include "src/core/report_stats.h"
#include "src/measure/export.h"
#include "src/telemetry/journey.h"
#include "src/telemetry/json_export.h"

namespace {

using namespace ctms;

void PrintUsage() {
  std::printf(
      "ctms_sim — reproduce the USENIX'91 CTMS experiments\n\n"
      "experiment selection:\n"
      "  --experiment=NAME     ctms (default), baseline, multistream, server, router,\n"
      "                        faultsweep, fabric, or campaign\n"
      "  --scenario=A|B        Test Case A (private quiet ring) or B (loaded public ring)\n"
      "  --baseline            shorthand for --experiment=baseline\n"
      "  --tcp                 baseline uses TCP-lite instead of UDP\n"
      "  --streams=N           multistream: concurrent CTMSP connections (default 2)\n"
      "  --clients=N           server: client machines fed from one media disk (default 2)\n"
      "  --chain-hops=N        router: store-and-forward bridges in the chain (default 1)\n\n"
      "fabric (--experiment=fabric, sharded multi-ring campus):\n"
      "  --rings=N             ring shards, one event core each (default 4)\n"
      "  --stations-per-ring=N stations on each shard ring (default 8)\n"
      "  --fabric-topology=T   chain, star, or ring-of-rings (default)\n"
      "  --link-latency-us=N   inter-ring link latency; also the conservative-lookahead\n"
      "                        window (default 500)\n"
      "  --jobs=N              shard worker threads; the report is byte-identical for\n"
      "                        every N (default 1)\n\n"
      "stream and environment:\n"
      "  --duration=SECONDS    simulated run length (default 30)\n"
      "  --seed=N              simulation seed (default 1)\n"
      "  --packet-bytes=N      payload per device interrupt (default 2000)\n"
      "  --period-ms=N         device interrupt period (default 12)\n"
      "  --memory=iocm|system  fixed DMA buffer placement\n"
      "  --no-driver-priority  CTMSP shares if_snd with ARP/IP\n"
      "  --ring-priority=N     Token Ring access priority, 0=off (default 6)\n"
      "  --zero-copy           pointer-passing transmit (router: zero-copy forwarding)\n"
      "  --retransmit          MAC-receive purge recovery\n"
      "  --insertions=MINUTES  mean minutes between station insertions (0=off)\n"
      "  --trace=FILE          replay a background-traffic CSV (offset_us,bytes) on loop\n\n"
      "faults and degradation:\n"
      "  --faults=FILE         deterministic fault plan JSON (see src/fault/fault_plan.h)\n"
      "  --degradation=MODE    drop (default, silent loss), block, or retransmit\n"
      "  --retry-budget=N      retransmit mode: retries per packet (default 3)\n"
      "  --retry-backoff-ms=N  retransmit mode: delay before each retry (default 2)\n"
      "  --sweep-levels=N      faultsweep: purge-storm intensity levels (default 4)\n"
      "  --sweep-purges=N      faultsweep: purges per storm (default 25)\n"
      "  --sweep-spacing-ms=N  faultsweep: spacing between purges in a storm (default 4)\n\n"
      "campaign (--experiment=campaign):\n"
      "  --grid=SPEC           swept axes, e.g. seed=1:8 or seed=1:4;streams=1,2,4;\n"
      "                        axis names are the flag names above, values are lists\n"
      "                        (v1,v2) or inclusive integer ranges (lo:hi or lo:hi:step)\n"
      "  --jobs=N              worker threads (default 1); the merged report is\n"
      "                        byte-identical for every N\n"
      "  --cell-experiment=E   experiment each grid point runs (default ctms)\n"
      "  --independent-faults  salt each run's fault-RNG fork with its grid index\n\n"
      "measurement and output:\n"
      "  --method=pcat|rtpc|logic|truth   instrument (default pcat)\n"
      "  --histogram=1..7      render a paper histogram as ASCII\n"
      "  --bin-us=N            histogram bin width (default 500)\n"
      "  --ground-truth        render histograms from the perfect observer\n"
      "  --csv-prefix=PATH     export all seven histograms as PATH_histN.csv\n"
      "  --metrics-json=FILE   write the run summary + full metrics registry as JSON\n"
      "                        (campaign: the merged aggregate + per-run document)\n"
      "  --trace-json=FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --print-metrics       print every telemetry counter after the run\n\n"
      "packet journeys (ctms experiment; sweepable like every other flag):\n"
      "  --journeys            per-packet lifecycle recording with a per-stage latency\n"
      "                        breakdown (source IRQ to delivery) in the run summary\n"
      "  --flight-recorder=N   finished journeys retained for post-mortems (default 64)\n"
      "  --journey-json=FILE   write the flight-recorder dump; when omitted, an anomaly\n"
      "                        (deadline miss, drop, retransmit, reorder-evict) writes\n"
      "                        flight_recorder.json automatically\n"
      "  --stage-histograms    per-stage log2 delta histograms in the breakdown\n");
}

// Parses argv into one ScenarioConfig through the shared flag tables
// (src/core/scenario_cli.h): `--name=value` goes through ApplyScenarioAxis, bare `--name`
// through ApplyScenarioPresenceFlag, and the post-parse checks through
// ValidateScenarioConfig — the exact code paths the campaign grid uses, so tool and grid
// cannot drift.
bool ParseOptions(int argc, char** argv, ScenarioConfig* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg == "--baseline") {  // legacy spelling of --experiment=baseline
      options->experiment = "baseline";
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return false;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      if (!ApplyScenarioPresenceFlag(options, arg.substr(2))) {
        std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
        return false;
      }
      continue;
    }
    std::string error;
    if (!ApplyScenarioAxis(options, arg.substr(2, eq - 2), arg.substr(eq + 1), &error)) {
      std::fprintf(stderr, "%s (try --help)\n", error.c_str());
      return false;
    }
  }
  const std::string error = ValidateScenarioConfig(*options);
  if (!error.empty()) {
    std::fprintf(stderr, "%s (try --help)\n", error.c_str());
    return false;
  }
  if (!options->faults_path.empty()) {
    std::string load_error;
    auto plan = FaultPlan::LoadFile(options->faults_path, &load_error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "bad fault plan %s: %s (try --help)\n",
                   options->faults_path.c_str(), load_error.c_str());
      return false;
    }
    options->faults = std::move(*plan);
  }
  return true;
}

// ---------------------------------------------------------------------------------------

// Post-run telemetry output shared by all experiment front ends. Returns false if a
// requested file could not be written.
bool EmitTelemetry(const ScenarioConfig& options, Simulation& sim, const RunSummaryInfo& info) {
  bool ok = true;
  JourneyRecorder& journeys = sim.telemetry().journeys;
  if (journeys.enabled()) {
    std::cout << "\n" << journeys.StageBreakdown();
    if (journeys.anomaly_fired()) {
      // An anomaly arms the automatic post-mortem: spans onto the trace (before it is
      // written below) and a JSON dump even when no --journey-json path was given.
      journeys.DumpToTracer();
    }
    const std::string journey_path = !options.journey_json.empty()
                                         ? options.journey_json
                                         : journeys.anomaly_fired() ? "flight_recorder.json"
                                                                    : "";
    if (!journey_path.empty()) {
      if (WriteJourneyJson(journeys, journey_path)) {
        std::printf("wrote %s\n", journey_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", journey_path.c_str());
        ok = false;
      }
    }
  }
  if (options.print_metrics) {
    std::printf("telemetry counters:\n");
    for (const auto& [name, counter] : sim.telemetry().metrics.counters()) {
      std::printf("  %-48s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  if (!options.trace_json.empty()) {
    if (WriteChromeTraceJson(sim.telemetry().tracer, options.trace_json)) {
      std::printf("wrote %s\n", options.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.trace_json.c_str());
      ok = false;
    }
  }
  if (!options.metrics_json.empty()) {
    if (WriteRunSummaryJson(sim.telemetry().metrics, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      ok = false;
    }
  }
  return ok;
}

RunSummaryInfo MakeInfo(const ScenarioConfig& options, std::string scenario) {
  RunSummaryInfo info;
  info.scenario = std::move(scenario);
  info.duration_s = static_cast<double>(options.duration_s);
  info.seed = options.seed;
  return info;
}

// Appends the injector's FaultReport to the run summary when the run had one.
void AttachFaultReport(RunSummaryInfo* info, RingTopology& topology) {
  if (const FaultInjector* injector = topology.fault_injector()) {
    info->fault = injector->report().Stats();
  }
}

const Histogram* SelectHistogram(const PaperHistograms& histograms, int number) {
  switch (number) {
    case 1:
      return &histograms.inter_irq;
    case 2:
      return &histograms.inter_handler;
    case 3:
      return &histograms.inter_pre_tx;
    case 4:
      return &histograms.inter_rx;
    case 5:
      return &histograms.irq_to_handler;
    case 6:
      return &histograms.handler_to_pre_tx;
    case 7:
      return &histograms.pre_tx_to_rx;
    default:
      return nullptr;
  }
}

int RunBaseline(const ScenarioConfig& options) {
  BaselineExperiment experiment(BaselineConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const BaselineReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.csv_prefix.empty()) {
    WriteSamplesCsv(report.end_to_end_latency, options.csv_prefix + "_latency.csv");
    std::printf("wrote %s_latency.csv\n", options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, options.tcp ? "baseline-tcp" : "baseline-udp");
  info.stats = SummaryStats(report);
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.Sustained() ? 0 : 2;
}

int RunMultiStream(const ScenarioConfig& options) {
  MultiStreamExperiment experiment(MultiStreamConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const MultiStreamReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "multistream");
  info.stats = SummaryStats(report);
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunServer(const ScenarioConfig& options) {
  ServerExperiment experiment(ServerConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const ServerReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "server");
  info.stats = SummaryStats(report);
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunRouter(const ScenarioConfig& options) {
  RouterExperiment experiment(RouterConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const RouterReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info =
      MakeInfo(options, options.zero_copy ? "router-zero-copy" : "router-mbuf");
  info.stats = SummaryStats(report);
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.KeepsUp() ? 0 : 2;
}

int RunFaultSweep(const ScenarioConfig& options) {
  FaultSweepExperiment experiment(FaultSweepConfigFrom(options));
  const FaultSweepReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.metrics_json.empty()) {
    // The sweep runs many independent simulations, so there is no single registry to dump;
    // emit the degradation curve itself as the stats block instead.
    RunSummaryInfo info = MakeInfo(options, "faultsweep");
    info.stats = SummaryStats(report);
    MetricsRegistry empty;
    if (WriteRunSummaryJson(empty, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      return 1;
    }
  }
  bool healthy = report.RetransmitBeatsDrop();
  for (DegradationMode policy : report.config.policies) {
    healthy = healthy && report.MonotoneNonIncreasing(policy);
  }
  return healthy ? 0 : 2;
}

int RunFabric(const ScenarioConfig& options) {
  FabricExperiment experiment(FabricConfigFrom(options));
  const FabricReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "fabric");
  info.stats = SummaryStats(report);
  if (!options.faults.events().empty()) {
    AttachFaultReport(&info,
                      experiment.shard(static_cast<size_t>(report.config.fault_shard)));
  }
  // A fabric is many simulations, so the single-sim EmitTelemetry path does not apply;
  // merge every shard's registry under "shard<i>." and export that one document.
  MetricsRegistry merged;
  experiment.MergeMetricsInto(&merged);
  if (options.print_metrics) {
    std::printf("telemetry counters:\n");
    for (const auto& [name, counter] : merged.counters()) {
      std::printf("  %-48s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  if (!options.metrics_json.empty()) {
    if (WriteRunSummaryJson(merged, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      return 1;
    }
  }
  return report.Healthy() ? 0 : 2;
}

int RunCampaign(const ScenarioConfig& options) {
  std::string error;
  auto grid = CampaignGrid::Parse(options.grid_spec, &error);
  if (!grid.has_value()) {
    std::fprintf(stderr, "bad --grid: %s (try --help)\n", error.c_str());
    return 1;
  }
  CampaignRunner::Options runner_options;
  runner_options.jobs = options.jobs;
  runner_options.independent_faults = options.independent_faults;
  CampaignRunner runner(options, std::move(*grid), std::move(runner_options));
  error = runner.Prepare();
  if (!error.empty()) {
    std::fprintf(stderr, "bad campaign: %s (try --help)\n", error.c_str());
    return 1;
  }
  const CampaignReport report = runner.Run();
  std::cout << report.Summary();
  if (!options.metrics_json.empty()) {
    if (report.WriteMergedJson(options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      return 1;
    }
  }
  return report.AllHealthy() ? 0 : 2;
}

int RunCtms(const ScenarioConfig& options) {
  CtmsConfig config = CtmsConfigFrom(options);

  CtmsExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  std::unique_ptr<TraceReplayTraffic> trace;
  if (!options.trace_path.empty()) {
    int error_line = 0;
    auto entries = TraceReplayTraffic::LoadCsv(options.trace_path, &error_line);
    if (!entries.has_value()) {
      std::fprintf(stderr, "bad trace file %s (line %d)\n", options.trace_path.c_str(),
                   error_line);
      return 1;
    }
    trace = std::make_unique<TraceReplayTraffic>(&experiment.ring(), std::move(*entries));
    SimDuration span = 0;
    for (const TraceEntry& entry : trace->trace()) {
      span = std::max(span, entry.offset);
    }
    trace->Start(/*loop=*/true, span + Milliseconds(50));
  }
  const ExperimentReport report = experiment.Run();
  std::cout << report.Summary();
  if (trace != nullptr) {
    std::printf("replayed %llu background frames from %s\n",
                static_cast<unsigned long long>(trace->frames_sent()),
                options.trace_path.c_str());
  }

  const PaperHistograms& source =
      options.ground_truth_output ? report.ground_truth : report.measured;
  if (options.histogram != 0) {
    const Histogram* histogram = SelectHistogram(source, options.histogram);
    std::cout << "\n" << histogram->SummaryLine() << "\n";
    std::cout << histogram->RenderAscii(Microseconds(options.bin_us));
  }
  if (!options.csv_prefix.empty()) {
    const int written = WritePaperHistogramsCsv(source, options.csv_prefix);
    std::printf("wrote %d CSV files with prefix %s\n", written, options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, config.name);
  info.stats = SummaryStats(report);
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  const bool healthy = report.packets_lost == 0 && report.sink_underruns == 0;
  return healthy ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    }
  }
  ScenarioConfig options;
  if (!ParseOptions(argc, argv, &options)) {
    return 1;
  }
  if (options.experiment == "baseline") {
    return RunBaseline(options);
  }
  if (options.experiment == "multistream") {
    return RunMultiStream(options);
  }
  if (options.experiment == "server") {
    return RunServer(options);
  }
  if (options.experiment == "router") {
    return RunRouter(options);
  }
  if (options.experiment == "faultsweep") {
    return RunFaultSweep(options);
  }
  if (options.experiment == "fabric") {
    return RunFabric(options);
  }
  if (options.experiment == "campaign") {
    return RunCampaign(options);
  }
  return RunCtms(options);
}
