// ctms_sim — command-line front end to the CTMS reproduction.
//
// Run any scenario from the paper's measurement matrix without writing code:
//
//   ctms_sim --scenario=A --duration=60
//   ctms_sim --scenario=B --duration=120 --histogram=6 --bin-us=500
//   ctms_sim --scenario=B --zero-copy --method=truth
//   ctms_sim --experiment=baseline --packet-bytes=2000 --tcp
//   ctms_sim --experiment=multistream --streams=3 --duration=20
//   ctms_sim --experiment=server --clients=2 --duration=20
//   ctms_sim --experiment=router --zero-copy
//   ctms_sim --scenario=B --faults=plan.json --degradation=retransmit
//   ctms_sim --experiment=faultsweep --sweep-levels=4 --duration=10
//   ctms_sim --scenario=B --csv-prefix=/tmp/run1 --duration=300
//
// Prints the experiment summary, optionally an ASCII histogram, and optionally exports all
// seven paper histograms as CSV.
//
// The flag tables below fill exactly one ScenarioConfig (src/core/scenario_cli.h); the
// per-experiment config structs are built from it by the converters there, so the run
// functions never hand-copy flag values.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <variant>

#include "src/core/ctms.h"
#include "src/measure/export.h"
#include "src/telemetry/json_export.h"

namespace {

using namespace ctms;

void PrintUsage() {
  std::printf(
      "ctms_sim — reproduce the USENIX'91 CTMS experiments\n\n"
      "experiment selection:\n"
      "  --experiment=NAME     ctms (default), baseline, multistream, server, router,\n"
      "                        or faultsweep\n"
      "  --scenario=A|B        Test Case A (private quiet ring) or B (loaded public ring)\n"
      "  --baseline            shorthand for --experiment=baseline\n"
      "  --tcp                 baseline uses TCP-lite instead of UDP\n"
      "  --streams=N           multistream: concurrent CTMSP connections (default 2)\n"
      "  --clients=N           server: client machines fed from one media disk (default 2)\n\n"
      "stream and environment:\n"
      "  --duration=SECONDS    simulated run length (default 30)\n"
      "  --seed=N              simulation seed (default 1)\n"
      "  --packet-bytes=N      payload per device interrupt (default 2000)\n"
      "  --period-ms=N         device interrupt period (default 12)\n"
      "  --memory=iocm|system  fixed DMA buffer placement\n"
      "  --no-driver-priority  CTMSP shares if_snd with ARP/IP\n"
      "  --ring-priority=N     Token Ring access priority, 0=off (default 6)\n"
      "  --zero-copy           pointer-passing transmit (router: zero-copy forwarding)\n"
      "  --retransmit          MAC-receive purge recovery\n"
      "  --insertions=MINUTES  mean minutes between station insertions (0=off)\n"
      "  --trace=FILE          replay a background-traffic CSV (offset_us,bytes) on loop\n\n"
      "faults and degradation:\n"
      "  --faults=FILE         deterministic fault plan JSON (see src/fault/fault_plan.h)\n"
      "  --degradation=MODE    drop (default, silent loss), block, or retransmit\n"
      "  --retry-budget=N      retransmit mode: retries per packet (default 3)\n"
      "  --retry-backoff-ms=N  retransmit mode: delay before each retry (default 2)\n"
      "  --sweep-levels=N      faultsweep: purge-storm intensity levels (default 4)\n"
      "  --sweep-purges=N      faultsweep: purges per storm (default 25)\n"
      "  --sweep-spacing-ms=N  faultsweep: spacing between purges in a storm (default 4)\n\n"
      "measurement and output:\n"
      "  --method=pcat|rtpc|logic|truth   instrument (default pcat)\n"
      "  --histogram=1..7      render a paper histogram as ASCII\n"
      "  --bin-us=N            histogram bin width (default 500)\n"
      "  --ground-truth        render histograms from the perfect observer\n"
      "  --csv-prefix=PATH     export all seven histograms as PATH_histN.csv\n"
      "  --metrics-json=FILE   write the run summary + full metrics registry as JSON\n"
      "  --trace-json=FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --print-metrics       print every telemetry counter after the run\n");
}

// ---------------------------------------------------------------------------------------
// Table-driven flag parsing. Three tables describe every flag: presence flags that set a
// bool, value flags that fill a ScenarioConfig member, and post-parse validations. Adding
// a flag is one table row; the parse loop and the error paths are shared.

struct BoolFlag {
  const char* name;
  bool ScenarioConfig::*field;
  bool value;  // what presence of the flag sets the field to
};

constexpr BoolFlag kBoolFlags[] = {
    {"tcp", &ScenarioConfig::tcp, true},
    {"no-driver-priority", &ScenarioConfig::driver_priority, false},
    {"zero-copy", &ScenarioConfig::zero_copy, true},
    {"retransmit", &ScenarioConfig::retransmit, true},
    {"ground-truth", &ScenarioConfig::ground_truth_output, true},
    {"print-metrics", &ScenarioConfig::print_metrics, true},
};

using ValueTarget = std::variant<std::string ScenarioConfig::*, int64_t ScenarioConfig::*,
                                 uint64_t ScenarioConfig::*, int ScenarioConfig::*>;

struct ValueFlag {
  const char* name;
  ValueTarget target;
  bool require_nonempty;  // reject `--flag=` when the value is mandatory
};

const ValueFlag kValueFlags[] = {
    {"experiment", &ScenarioConfig::experiment, true},
    {"scenario", &ScenarioConfig::scenario, true},
    {"duration", &ScenarioConfig::duration_s, false},
    {"seed", &ScenarioConfig::seed, false},
    {"packet-bytes", &ScenarioConfig::packet_bytes, false},
    {"period-ms", &ScenarioConfig::period_ms, false},
    {"streams", &ScenarioConfig::streams, false},
    {"clients", &ScenarioConfig::clients, false},
    {"memory", &ScenarioConfig::memory, true},
    {"method", &ScenarioConfig::method, true},
    {"ring-priority", &ScenarioConfig::ring_priority, false},
    {"insertions", &ScenarioConfig::insertion_mean_min, false},
    {"faults", &ScenarioConfig::faults_path, true},
    {"degradation", &ScenarioConfig::degradation, true},
    {"retry-budget", &ScenarioConfig::retry_budget, false},
    {"retry-backoff-ms", &ScenarioConfig::retry_backoff_ms, false},
    {"sweep-levels", &ScenarioConfig::sweep_levels, false},
    {"sweep-purges", &ScenarioConfig::sweep_purges, false},
    {"sweep-spacing-ms", &ScenarioConfig::sweep_spacing_ms, false},
    {"histogram", &ScenarioConfig::histogram, false},
    {"bin-us", &ScenarioConfig::bin_us, false},
    {"csv-prefix", &ScenarioConfig::csv_prefix, false},
    {"trace", &ScenarioConfig::trace_path, false},
    {"metrics-json", &ScenarioConfig::metrics_json, true},
    {"trace-json", &ScenarioConfig::trace_json, true},
};

void StoreValue(ScenarioConfig* options, const ValueTarget& target, const std::string& value) {
  std::visit(
      [&](auto member) {
        using Field = std::remove_reference_t<decltype(options->*member)>;
        if constexpr (std::is_same_v<Field, std::string>) {
          options->*member = value;
        } else {
          options->*member = static_cast<Field>(std::atoll(value.c_str()));
        }
      },
      target);
}

// A string flag restricted to an enumerated set of spellings.
struct ChoiceCheck {
  const char* name;
  std::string ScenarioConfig::*field;
  std::initializer_list<const char*> allowed;
};

const ChoiceCheck kChoiceChecks[] = {
    {"experiment",
     &ScenarioConfig::experiment,
     {"ctms", "baseline", "multistream", "server", "router", "faultsweep"}},
    {"scenario", &ScenarioConfig::scenario, {"A", "B"}},
    {"memory", &ScenarioConfig::memory, {"iocm", "system"}},
    {"method", &ScenarioConfig::method, {"pcat", "rtpc", "logic", "truth"}},
    {"degradation",
     &ScenarioConfig::degradation,
     {"drop", "drop-oldest", "block", "retransmit", "purge-retransmit"}},
};

// A numeric flag with an inclusive valid range.
struct RangeCheck {
  const char* name;
  std::variant<int64_t ScenarioConfig::*, int ScenarioConfig::*> field;
  int64_t min;
  int64_t max;
  const char* message;
};

const RangeCheck kRangeChecks[] = {
    {"duration", &ScenarioConfig::duration_s, 1, INT64_MAX,
     "--duration must be a positive number of seconds"},
    {"packet-bytes", &ScenarioConfig::packet_bytes, 1, INT64_MAX,
     "--packet-bytes must be positive"},
    {"period-ms", &ScenarioConfig::period_ms, 1, INT64_MAX, "--period-ms must be positive"},
    {"streams", &ScenarioConfig::streams, 1, 16, "--streams must be between 1 and 16"},
    {"clients", &ScenarioConfig::clients, 1, 16, "--clients must be between 1 and 16"},
    {"retry-budget", &ScenarioConfig::retry_budget, 0, 1000,
     "--retry-budget must be between 0 and 1000"},
    {"retry-backoff-ms", &ScenarioConfig::retry_backoff_ms, 0, INT64_MAX,
     "--retry-backoff-ms must be non-negative"},
    {"sweep-levels", &ScenarioConfig::sweep_levels, 1, 16,
     "--sweep-levels must be between 1 and 16"},
    {"sweep-purges", &ScenarioConfig::sweep_purges, 1, 1000,
     "--sweep-purges must be between 1 and 1000"},
    {"sweep-spacing-ms", &ScenarioConfig::sweep_spacing_ms, 1, INT64_MAX,
     "--sweep-spacing-ms must be positive"},
    {"histogram", &ScenarioConfig::histogram, 0, 7,
     "--histogram must be between 1 and 7, or 0 for none"},
};

bool ParseOptions(int argc, char** argv, ScenarioConfig* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg == "--baseline") {  // legacy spelling of --experiment=baseline
      options->experiment = "baseline";
      continue;
    }
    bool matched = false;
    for (const BoolFlag& flag : kBoolFlags) {
      if (arg == std::string("--") + flag.name) {
        options->*flag.field = flag.value;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    for (const ValueFlag& flag : kValueFlags) {
      const std::string prefix = std::string("--") + flag.name + "=";
      if (arg.rfind(prefix, 0) != 0) {
        continue;
      }
      const std::string value = arg.substr(prefix.size());
      if (flag.require_nonempty && value.empty()) {
        std::fprintf(stderr, "--%s requires a value (try --help)\n", flag.name);
        return false;
      }
      StoreValue(options, flag.target, value);
      matched = true;
      break;
    }
    if (!matched) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  for (const ChoiceCheck& check : kChoiceChecks) {
    const std::string& value = options->*check.field;
    if (std::none_of(check.allowed.begin(), check.allowed.end(),
                     [&](const char* allowed) { return value == allowed; })) {
      std::string expected;
      for (const char* allowed : check.allowed) {
        expected += expected.empty() ? allowed : std::string(" or ") + allowed;
      }
      std::fprintf(stderr, "unknown --%s=%s (expected %s; try --help)\n", check.name,
                   value.c_str(), expected.c_str());
      return false;
    }
  }
  for (const RangeCheck& check : kRangeChecks) {
    const int64_t value = std::visit(
        [&](auto member) { return static_cast<int64_t>(options->*member); }, check.field);
    if (value < check.min || value > check.max) {
      std::fprintf(stderr, "%s (try --help)\n", check.message);
      return false;
    }
  }
  if (!options->faults_path.empty()) {
    std::string error;
    auto plan = FaultPlan::LoadFile(options->faults_path, &error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "bad fault plan %s: %s (try --help)\n",
                   options->faults_path.c_str(), error.c_str());
      return false;
    }
    options->faults = std::move(*plan);
  }
  return true;
}

// ---------------------------------------------------------------------------------------

// Post-run telemetry output shared by all experiment front ends. Returns false if a
// requested file could not be written.
bool EmitTelemetry(const ScenarioConfig& options, Simulation& sim, const RunSummaryInfo& info) {
  bool ok = true;
  if (options.print_metrics) {
    std::printf("telemetry counters:\n");
    for (const auto& [name, counter] : sim.telemetry().metrics.counters()) {
      std::printf("  %-48s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  if (!options.trace_json.empty()) {
    if (WriteChromeTraceJson(sim.telemetry().tracer, options.trace_json)) {
      std::printf("wrote %s\n", options.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.trace_json.c_str());
      ok = false;
    }
  }
  if (!options.metrics_json.empty()) {
    if (WriteRunSummaryJson(sim.telemetry().metrics, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      ok = false;
    }
  }
  return ok;
}

RunSummaryInfo MakeInfo(const ScenarioConfig& options, std::string scenario) {
  RunSummaryInfo info;
  info.scenario = std::move(scenario);
  info.duration_s = static_cast<double>(options.duration_s);
  info.seed = options.seed;
  return info;
}

// Appends the injector's FaultReport to the run summary when the run had one.
void AttachFaultReport(RunSummaryInfo* info, RingTopology& topology) {
  if (const FaultInjector* injector = topology.fault_injector()) {
    info->fault = injector->report().Stats();
  }
}

const Histogram* SelectHistogram(const PaperHistograms& histograms, int number) {
  switch (number) {
    case 1:
      return &histograms.inter_irq;
    case 2:
      return &histograms.inter_handler;
    case 3:
      return &histograms.inter_pre_tx;
    case 4:
      return &histograms.inter_rx;
    case 5:
      return &histograms.irq_to_handler;
    case 6:
      return &histograms.handler_to_pre_tx;
    case 7:
      return &histograms.pre_tx_to_rx;
    default:
      return nullptr;
  }
}

int RunBaseline(const ScenarioConfig& options) {
  BaselineExperiment experiment(BaselineConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const BaselineReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.csv_prefix.empty()) {
    WriteSamplesCsv(report.end_to_end_latency, options.csv_prefix + "_latency.csv");
    std::printf("wrote %s_latency.csv\n", options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, options.tcp ? "baseline-tcp" : "baseline-udp");
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.Sustained() ? 0 : 2;
}

int RunMultiStream(const ScenarioConfig& options) {
  MultiStreamExperiment experiment(MultiStreamConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const MultiStreamReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "multistream");
  uint64_t built = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t underruns = 0;
  for (const StreamQuality& stream : report.streams) {
    built += stream.built;
    delivered += stream.delivered;
    lost += stream.lost;
    underruns += stream.underruns;
  }
  info.stats = {
      {"streams", static_cast<double>(report.streams.size())},
      {"packets_built", static_cast<double>(built)},
      {"packets_delivered", static_cast<double>(delivered)},
      {"packets_lost", static_cast<double>(lost)},
      {"sink_underruns", static_cast<double>(underruns)},
      {"ring_utilization", report.ring_utilization},
  };
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunServer(const ScenarioConfig& options) {
  ServerExperiment experiment(ServerConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const ServerReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "server");
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t starvations = 0;
  uint64_t underruns = 0;
  for (const ServerClientQuality& client : report.clients) {
    sent += client.sent;
    delivered += client.delivered;
    starvations += client.server_starvations;
    underruns += client.underruns;
  }
  info.stats = {
      {"clients", static_cast<double>(report.clients.size())},
      {"packets_sent", static_cast<double>(sent)},
      {"packets_delivered", static_cast<double>(delivered)},
      {"server_starvations", static_cast<double>(starvations)},
      {"sink_underruns", static_cast<double>(underruns)},
      {"server_cpu_utilization", report.server_cpu_utilization},
      {"disk_utilization", report.disk_utilization},
      {"ring_utilization", report.ring_utilization},
  };
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunRouter(const ScenarioConfig& options) {
  RouterExperiment experiment(RouterConfigFrom(options));
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const RouterReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info =
      MakeInfo(options, options.zero_copy ? "router-zero-copy" : "router-mbuf");
  info.stats = {
      {"packets_built", static_cast<double>(report.packets_built)},
      {"packets_forwarded", static_cast<double>(report.packets_forwarded)},
      {"packets_delivered", static_cast<double>(report.packets_delivered)},
      {"packets_lost", static_cast<double>(report.packets_lost)},
      {"router_queue_drops", static_cast<double>(report.router_queue_drops)},
      {"sink_underruns", static_cast<double>(report.sink_underruns)},
      {"router_cpu_utilization", report.router_cpu_utilization},
      {"ring_a_utilization", report.ring_a_utilization},
      {"ring_b_utilization", report.ring_b_utilization},
  };
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.KeepsUp() ? 0 : 2;
}

int RunFaultSweep(const ScenarioConfig& options) {
  FaultSweepExperiment experiment(FaultSweepConfigFrom(options));
  const FaultSweepReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.metrics_json.empty()) {
    // The sweep runs many independent simulations, so there is no single registry to dump;
    // emit the degradation curve itself as the stats block instead.
    RunSummaryInfo info = MakeInfo(options, "faultsweep");
    for (const FaultSweepRow& row : report.rows) {
      const std::string prefix =
          "L" + std::to_string(row.level) + "_" + DegradationModeName(row.policy) + "_";
      info.stats.emplace_back(prefix + "delivered_ratio", row.delivered_ratio);
      info.stats.emplace_back(prefix + "purges", static_cast<double>(row.purges_injected));
      info.stats.emplace_back(prefix + "retransmissions",
                              static_cast<double>(row.retransmissions));
    }
    MetricsRegistry empty;
    if (WriteRunSummaryJson(empty, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      return 1;
    }
  }
  bool healthy = report.RetransmitBeatsDrop();
  for (DegradationMode policy : report.config.policies) {
    healthy = healthy && report.MonotoneNonIncreasing(policy);
  }
  return healthy ? 0 : 2;
}

int RunCtms(const ScenarioConfig& options) {
  CtmsConfig config = CtmsConfigFrom(options);

  CtmsExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  std::unique_ptr<TraceReplayTraffic> trace;
  if (!options.trace_path.empty()) {
    int error_line = 0;
    auto entries = TraceReplayTraffic::LoadCsv(options.trace_path, &error_line);
    if (!entries.has_value()) {
      std::fprintf(stderr, "bad trace file %s (line %d)\n", options.trace_path.c_str(),
                   error_line);
      return 1;
    }
    trace = std::make_unique<TraceReplayTraffic>(&experiment.ring(), std::move(*entries));
    SimDuration span = 0;
    for (const TraceEntry& entry : trace->trace()) {
      span = std::max(span, entry.offset);
    }
    trace->Start(/*loop=*/true, span + Milliseconds(50));
  }
  const ExperimentReport report = experiment.Run();
  std::cout << report.Summary();
  if (trace != nullptr) {
    std::printf("replayed %llu background frames from %s\n",
                static_cast<unsigned long long>(trace->frames_sent()),
                options.trace_path.c_str());
  }

  const PaperHistograms& source =
      options.ground_truth_output ? report.ground_truth : report.measured;
  if (options.histogram != 0) {
    const Histogram* histogram = SelectHistogram(source, options.histogram);
    std::cout << "\n" << histogram->SummaryLine() << "\n";
    std::cout << histogram->RenderAscii(Microseconds(options.bin_us));
  }
  if (!options.csv_prefix.empty()) {
    const int written = WritePaperHistogramsCsv(source, options.csv_prefix);
    std::printf("wrote %d CSV files with prefix %s\n", written, options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, config.name);
  info.stats = {
      {"packets_built", static_cast<double>(report.packets_built)},
      {"packets_delivered", static_cast<double>(report.packets_delivered)},
      {"packets_lost", static_cast<double>(report.packets_lost)},
      {"duplicates", static_cast<double>(report.duplicates)},
      {"out_of_order", static_cast<double>(report.out_of_order)},
      {"retransmissions", static_cast<double>(report.retransmissions)},
      {"sink_underruns", static_cast<double>(report.sink_underruns)},
      {"sink_peak_buffer_bytes", static_cast<double>(report.sink_peak_buffer)},
      {"tx_cpu_utilization", report.tx_cpu_utilization},
      {"rx_cpu_utilization", report.rx_cpu_utilization},
      {"ring_utilization", report.ring_utilization},
      {"ring_purges", static_cast<double>(report.ring_purges)},
      {"ring_insertions", static_cast<double>(report.ring_insertions)},
  };
  AttachFaultReport(&info, experiment.topology());
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  const bool healthy = report.packets_lost == 0 && report.sink_underruns == 0;
  return healthy ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    }
  }
  ScenarioConfig options;
  if (!ParseOptions(argc, argv, &options)) {
    return 1;
  }
  if (options.experiment == "baseline") {
    return RunBaseline(options);
  }
  if (options.experiment == "multistream") {
    return RunMultiStream(options);
  }
  if (options.experiment == "server") {
    return RunServer(options);
  }
  if (options.experiment == "router") {
    return RunRouter(options);
  }
  if (options.experiment == "faultsweep") {
    return RunFaultSweep(options);
  }
  return RunCtms(options);
}
