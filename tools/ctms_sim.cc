// ctms_sim — command-line front end to the CTMS reproduction.
//
// Run any scenario from the paper's measurement matrix without writing code:
//
//   ctms_sim --scenario=A --duration=60
//   ctms_sim --scenario=B --duration=120 --histogram=6 --bin-us=500
//   ctms_sim --scenario=B --zero-copy --method=truth
//   ctms_sim --experiment=baseline --packet-bytes=2000 --tcp
//   ctms_sim --experiment=multistream --streams=3 --duration=20
//   ctms_sim --experiment=server --clients=2 --duration=20
//   ctms_sim --experiment=router --zero-copy
//   ctms_sim --scenario=B --csv-prefix=/tmp/run1 --duration=300
//
// Prints the experiment summary, optionally an ASCII histogram, and optionally exports all
// seven paper histograms as CSV.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <variant>

#include "src/core/ctms.h"
#include "src/measure/export.h"
#include "src/telemetry/json_export.h"

namespace {

using namespace ctms;

struct Options {
  std::string experiment = "ctms";
  std::string scenario = "A";
  bool baseline = false;  // legacy spelling of --experiment=baseline
  bool tcp = false;
  int64_t duration_s = 30;
  uint64_t seed = 1;
  int64_t packet_bytes = 2000;
  int64_t period_ms = 12;
  int64_t streams = 2;
  int64_t clients = 2;
  std::string memory = "iocm";
  std::string method = "pcat";
  bool driver_priority = true;
  int ring_priority = 6;
  bool zero_copy = false;
  bool retransmit = false;
  int64_t insertion_mean_min = 0;
  int histogram = 0;  // 0 = none, 1..7 = paper histogram number
  int64_t bin_us = 500;
  std::string csv_prefix;
  std::string trace_path;
  bool ground_truth_output = false;
  std::string metrics_json;
  std::string trace_json;
  bool print_metrics = false;
};

void PrintUsage() {
  std::printf(
      "ctms_sim — reproduce the USENIX'91 CTMS experiments\n\n"
      "experiment selection:\n"
      "  --experiment=NAME     ctms (default), baseline, multistream, server, or router\n"
      "  --scenario=A|B        Test Case A (private quiet ring) or B (loaded public ring)\n"
      "  --baseline            shorthand for --experiment=baseline\n"
      "  --tcp                 baseline uses TCP-lite instead of UDP\n"
      "  --streams=N           multistream: concurrent CTMSP connections (default 2)\n"
      "  --clients=N           server: client machines fed from one media disk (default 2)\n\n"
      "stream and environment:\n"
      "  --duration=SECONDS    simulated run length (default 30)\n"
      "  --seed=N              simulation seed (default 1)\n"
      "  --packet-bytes=N      payload per device interrupt (default 2000)\n"
      "  --period-ms=N         device interrupt period (default 12)\n"
      "  --memory=iocm|system  fixed DMA buffer placement\n"
      "  --no-driver-priority  CTMSP shares if_snd with ARP/IP\n"
      "  --ring-priority=N     Token Ring access priority, 0=off (default 6)\n"
      "  --zero-copy           pointer-passing transmit (router: zero-copy forwarding)\n"
      "  --retransmit          MAC-receive purge recovery\n"
      "  --insertions=MINUTES  mean minutes between station insertions (0=off)\n"
      "  --trace=FILE          replay a background-traffic CSV (offset_us,bytes) on loop\n\n"
      "measurement and output:\n"
      "  --method=pcat|rtpc|logic|truth   instrument (default pcat)\n"
      "  --histogram=1..7      render a paper histogram as ASCII\n"
      "  --bin-us=N            histogram bin width (default 500)\n"
      "  --ground-truth        render histograms from the perfect observer\n"
      "  --csv-prefix=PATH     export all seven histograms as PATH_histN.csv\n"
      "  --metrics-json=FILE   write the run summary + full metrics registry as JSON\n"
      "  --trace-json=FILE     write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --print-metrics       print every telemetry counter after the run\n");
}

// ---------------------------------------------------------------------------------------
// Table-driven flag parsing. Three tables describe every flag: presence flags that set a
// bool, value flags that fill a member, and post-parse validations. Adding a flag is one
// table row; the parse loop and the error paths are shared.

struct BoolFlag {
  const char* name;
  bool Options::*field;
  bool value;  // what presence of the flag sets the field to
};

constexpr BoolFlag kBoolFlags[] = {
    {"baseline", &Options::baseline, true},
    {"tcp", &Options::tcp, true},
    {"no-driver-priority", &Options::driver_priority, false},
    {"zero-copy", &Options::zero_copy, true},
    {"retransmit", &Options::retransmit, true},
    {"ground-truth", &Options::ground_truth_output, true},
    {"print-metrics", &Options::print_metrics, true},
};

using ValueTarget = std::variant<std::string Options::*, int64_t Options::*,
                                 uint64_t Options::*, int Options::*>;

struct ValueFlag {
  const char* name;
  ValueTarget target;
  bool require_nonempty;  // reject `--flag=` when the value is mandatory
};

const ValueFlag kValueFlags[] = {
    {"experiment", &Options::experiment, true},
    {"scenario", &Options::scenario, true},
    {"duration", &Options::duration_s, false},
    {"seed", &Options::seed, false},
    {"packet-bytes", &Options::packet_bytes, false},
    {"period-ms", &Options::period_ms, false},
    {"streams", &Options::streams, false},
    {"clients", &Options::clients, false},
    {"memory", &Options::memory, true},
    {"method", &Options::method, true},
    {"ring-priority", &Options::ring_priority, false},
    {"insertions", &Options::insertion_mean_min, false},
    {"histogram", &Options::histogram, false},
    {"bin-us", &Options::bin_us, false},
    {"csv-prefix", &Options::csv_prefix, false},
    {"trace", &Options::trace_path, false},
    {"metrics-json", &Options::metrics_json, true},
    {"trace-json", &Options::trace_json, true},
};

void StoreValue(Options* options, const ValueTarget& target, const std::string& value) {
  std::visit(
      [&](auto member) {
        using Field = std::remove_reference_t<decltype(options->*member)>;
        if constexpr (std::is_same_v<Field, std::string>) {
          options->*member = value;
        } else {
          options->*member = static_cast<Field>(std::atoll(value.c_str()));
        }
      },
      target);
}

// A string flag restricted to an enumerated set of spellings.
struct ChoiceCheck {
  const char* name;
  std::string Options::*field;
  std::initializer_list<const char*> allowed;
};

const ChoiceCheck kChoiceChecks[] = {
    {"experiment", &Options::experiment, {"ctms", "baseline", "multistream", "server", "router"}},
    {"scenario", &Options::scenario, {"A", "B"}},
    {"memory", &Options::memory, {"iocm", "system"}},
    {"method", &Options::method, {"pcat", "rtpc", "logic", "truth"}},
};

// A numeric flag with an inclusive valid range.
struct RangeCheck {
  const char* name;
  std::variant<int64_t Options::*, int Options::*> field;
  int64_t min;
  int64_t max;
  const char* message;
};

const RangeCheck kRangeChecks[] = {
    {"duration", &Options::duration_s, 1, INT64_MAX,
     "--duration must be a positive number of seconds"},
    {"packet-bytes", &Options::packet_bytes, 1, INT64_MAX, "--packet-bytes must be positive"},
    {"period-ms", &Options::period_ms, 1, INT64_MAX, "--period-ms must be positive"},
    {"streams", &Options::streams, 1, 16, "--streams must be between 1 and 16"},
    {"clients", &Options::clients, 1, 16, "--clients must be between 1 and 16"},
    {"histogram", &Options::histogram, 0, 7,
     "--histogram must be between 1 and 7, or 0 for none"},
};

bool ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    bool matched = false;
    for (const BoolFlag& flag : kBoolFlags) {
      if (arg == std::string("--") + flag.name) {
        options->*flag.field = flag.value;
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    for (const ValueFlag& flag : kValueFlags) {
      const std::string prefix = std::string("--") + flag.name + "=";
      if (arg.rfind(prefix, 0) != 0) {
        continue;
      }
      const std::string value = arg.substr(prefix.size());
      if (flag.require_nonempty && value.empty()) {
        std::fprintf(stderr, "--%s requires a value (try --help)\n", flag.name);
        return false;
      }
      StoreValue(options, flag.target, value);
      matched = true;
      break;
    }
    if (!matched) {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  if (options->baseline) {
    options->experiment = "baseline";
  }
  for (const ChoiceCheck& check : kChoiceChecks) {
    const std::string& value = options->*check.field;
    if (std::none_of(check.allowed.begin(), check.allowed.end(),
                     [&](const char* allowed) { return value == allowed; })) {
      std::string expected;
      for (const char* allowed : check.allowed) {
        expected += expected.empty() ? allowed : std::string(" or ") + allowed;
      }
      std::fprintf(stderr, "unknown --%s=%s (expected %s; try --help)\n", check.name,
                   value.c_str(), expected.c_str());
      return false;
    }
  }
  for (const RangeCheck& check : kRangeChecks) {
    const int64_t value = std::visit(
        [&](auto member) { return static_cast<int64_t>(options->*member); }, check.field);
    if (value < check.min || value > check.max) {
      std::fprintf(stderr, "%s (try --help)\n", check.message);
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------------------

// Post-run telemetry output shared by all experiment front ends. Returns false if a
// requested file could not be written.
bool EmitTelemetry(const Options& options, Simulation& sim, const RunSummaryInfo& info) {
  bool ok = true;
  if (options.print_metrics) {
    std::printf("telemetry counters:\n");
    for (const auto& [name, counter] : sim.telemetry().metrics.counters()) {
      std::printf("  %-48s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  if (!options.trace_json.empty()) {
    if (WriteChromeTraceJson(sim.telemetry().tracer, options.trace_json)) {
      std::printf("wrote %s\n", options.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.trace_json.c_str());
      ok = false;
    }
  }
  if (!options.metrics_json.empty()) {
    if (WriteRunSummaryJson(sim.telemetry().metrics, info, options.metrics_json)) {
      std::printf("wrote %s\n", options.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
      ok = false;
    }
  }
  return ok;
}

RunSummaryInfo MakeInfo(const Options& options, std::string scenario) {
  RunSummaryInfo info;
  info.scenario = std::move(scenario);
  info.duration_s = static_cast<double>(options.duration_s);
  info.seed = options.seed;
  return info;
}

MemoryKind MemoryKindFor(const Options& options) {
  return options.memory == "system" ? MemoryKind::kSystemMemory : MemoryKind::kIoChannelMemory;
}

const Histogram* SelectHistogram(const PaperHistograms& histograms, int number) {
  switch (number) {
    case 1:
      return &histograms.inter_irq;
    case 2:
      return &histograms.inter_handler;
    case 3:
      return &histograms.inter_pre_tx;
    case 4:
      return &histograms.inter_rx;
    case 5:
      return &histograms.irq_to_handler;
    case 6:
      return &histograms.handler_to_pre_tx;
    case 7:
      return &histograms.pre_tx_to_rx;
    default:
      return nullptr;
  }
}

int RunBaseline(const Options& options) {
  BaselineConfig config;
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.use_tcp = options.tcp;
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  config.dma_buffer_kind = MemoryKindFor(options);
  BaselineExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const BaselineReport report = experiment.Run();
  std::cout << report.Summary();
  if (!options.csv_prefix.empty()) {
    WriteSamplesCsv(report.end_to_end_latency, options.csv_prefix + "_latency.csv");
    std::printf("wrote %s_latency.csv\n", options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, options.tcp ? "baseline-tcp" : "baseline-udp");
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.Sustained() ? 0 : 2;
}

int RunMultiStream(const Options& options) {
  MultiStreamConfig config;
  config.streams = static_cast<int>(options.streams);
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.dma_buffer_kind = MemoryKindFor(options);
  config.ring_priority = options.ring_priority;
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  MultiStreamExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const MultiStreamReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "multistream");
  uint64_t built = 0;
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t underruns = 0;
  for (const StreamQuality& stream : report.streams) {
    built += stream.built;
    delivered += stream.delivered;
    lost += stream.lost;
    underruns += stream.underruns;
  }
  info.stats = {
      {"streams", static_cast<double>(report.streams.size())},
      {"packets_built", static_cast<double>(built)},
      {"packets_delivered", static_cast<double>(delivered)},
      {"packets_lost", static_cast<double>(lost)},
      {"sink_underruns", static_cast<double>(underruns)},
      {"ring_utilization", report.ring_utilization},
  };
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunServer(const Options& options) {
  ServerConfig config;
  config.clients = static_cast<int>(options.clients);
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.dma_buffer_kind = MemoryKindFor(options);
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  ServerExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const ServerReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info = MakeInfo(options, "server");
  uint64_t sent = 0;
  uint64_t delivered = 0;
  uint64_t starvations = 0;
  uint64_t underruns = 0;
  for (const ServerClientQuality& client : report.clients) {
    sent += client.sent;
    delivered += client.delivered;
    starvations += client.server_starvations;
    underruns += client.underruns;
  }
  info.stats = {
      {"clients", static_cast<double>(report.clients.size())},
      {"packets_sent", static_cast<double>(sent)},
      {"packets_delivered", static_cast<double>(delivered)},
      {"server_starvations", static_cast<double>(starvations)},
      {"sink_underruns", static_cast<double>(underruns)},
      {"server_cpu_utilization", report.server_cpu_utilization},
      {"disk_utilization", report.disk_utilization},
      {"ring_utilization", report.ring_utilization},
  };
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.AllSustained() ? 0 : 2;
}

int RunRouter(const Options& options) {
  RouterConfig config;
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.dma_buffer_kind = MemoryKindFor(options);
  config.forward_via_mbufs = !options.zero_copy;  // --zero-copy selects zero-copy forwarding
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  RouterExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  const RouterReport report = experiment.Run();
  std::cout << report.Summary();
  RunSummaryInfo info =
      MakeInfo(options, options.zero_copy ? "router-zero-copy" : "router-mbuf");
  info.stats = {
      {"packets_built", static_cast<double>(report.packets_built)},
      {"packets_forwarded", static_cast<double>(report.packets_forwarded)},
      {"packets_delivered", static_cast<double>(report.packets_delivered)},
      {"packets_lost", static_cast<double>(report.packets_lost)},
      {"router_queue_drops", static_cast<double>(report.router_queue_drops)},
      {"sink_underruns", static_cast<double>(report.sink_underruns)},
      {"router_cpu_utilization", report.router_cpu_utilization},
      {"ring_a_utilization", report.ring_a_utilization},
      {"ring_b_utilization", report.ring_b_utilization},
  };
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  return report.KeepsUp() ? 0 : 2;
}

int RunCtms(const Options& options) {
  ScenarioConfig config = options.scenario == "B" ? TestCaseB() : TestCaseA();
  config.duration = Seconds(options.duration_s);
  config.seed = options.seed;
  config.packet_bytes = options.packet_bytes;
  config.packet_period = Milliseconds(options.period_ms);
  config.dma_buffer_kind = MemoryKindFor(options);
  config.driver_priority = options.driver_priority;
  config.ring_priority = options.ring_priority;
  config.tx_zero_copy = options.zero_copy;
  config.retransmit_on_purge = options.retransmit;
  config.insertion_mean = Minutes(options.insertion_mean_min);
  if (options.method == "rtpc") {
    config.method = MeasurementMethod::kRtPcPseudoDevice;
  } else if (options.method == "logic") {
    config.method = MeasurementMethod::kLogicAnalyzer;
  } else if (options.method == "truth") {
    config.method = MeasurementMethod::kGroundTruth;
  } else {
    config.method = MeasurementMethod::kPcAt;
  }

  CtmsExperiment experiment(config);
  if (!options.trace_json.empty()) {
    experiment.sim().telemetry().tracer.set_enabled(true);
  }
  std::unique_ptr<TraceReplayTraffic> trace;
  if (!options.trace_path.empty()) {
    int error_line = 0;
    auto entries = TraceReplayTraffic::LoadCsv(options.trace_path, &error_line);
    if (!entries.has_value()) {
      std::fprintf(stderr, "bad trace file %s (line %d)\n", options.trace_path.c_str(),
                   error_line);
      return 1;
    }
    trace = std::make_unique<TraceReplayTraffic>(&experiment.ring(), std::move(*entries));
    SimDuration span = 0;
    for (const TraceEntry& entry : trace->trace()) {
      span = std::max(span, entry.offset);
    }
    trace->Start(/*loop=*/true, span + Milliseconds(50));
  }
  const ExperimentReport report = experiment.Run();
  std::cout << report.Summary();
  if (trace != nullptr) {
    std::printf("replayed %llu background frames from %s\n",
                static_cast<unsigned long long>(trace->frames_sent()),
                options.trace_path.c_str());
  }

  const PaperHistograms& source =
      options.ground_truth_output ? report.ground_truth : report.measured;
  if (options.histogram != 0) {
    const Histogram* histogram = SelectHistogram(source, options.histogram);
    std::cout << "\n" << histogram->SummaryLine() << "\n";
    std::cout << histogram->RenderAscii(Microseconds(options.bin_us));
  }
  if (!options.csv_prefix.empty()) {
    const int written = WritePaperHistogramsCsv(source, options.csv_prefix);
    std::printf("wrote %d CSV files with prefix %s\n", written, options.csv_prefix.c_str());
  }
  RunSummaryInfo info = MakeInfo(options, config.name);
  info.stats = {
      {"packets_built", static_cast<double>(report.packets_built)},
      {"packets_delivered", static_cast<double>(report.packets_delivered)},
      {"packets_lost", static_cast<double>(report.packets_lost)},
      {"duplicates", static_cast<double>(report.duplicates)},
      {"out_of_order", static_cast<double>(report.out_of_order)},
      {"retransmissions", static_cast<double>(report.retransmissions)},
      {"sink_underruns", static_cast<double>(report.sink_underruns)},
      {"sink_peak_buffer_bytes", static_cast<double>(report.sink_peak_buffer)},
      {"tx_cpu_utilization", report.tx_cpu_utilization},
      {"rx_cpu_utilization", report.rx_cpu_utilization},
      {"ring_utilization", report.ring_utilization},
      {"ring_purges", static_cast<double>(report.ring_purges)},
      {"ring_insertions", static_cast<double>(report.ring_insertions)},
  };
  if (!EmitTelemetry(options, experiment.sim(), info)) {
    return 1;
  }
  const bool healthy = report.packets_lost == 0 && report.sink_underruns == 0;
  return healthy ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    }
  }
  Options options;
  if (!ParseOptions(argc, argv, &options)) {
    return 1;
  }
  if (options.experiment == "baseline") {
    return RunBaseline(options);
  }
  if (options.experiment == "multistream") {
    return RunMultiStream(options);
  }
  if (options.experiment == "server") {
    return RunServer(options);
  }
  if (options.experiment == "router") {
    return RunRouter(options);
  }
  return RunCtms(options);
}
